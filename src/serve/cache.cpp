#include "serve/cache.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tp::serve {

double roundSignificant(double v, int digits) {
  if (digits <= 0 || v == 0.0 || !std::isfinite(v)) {
    return v == 0.0 ? 0.0 : v;
  }
  const double exponent = std::floor(std::log10(std::fabs(v)));
  const double scale =
      std::pow(10.0, static_cast<double>(digits - 1) - exponent);
  // Near the double range limits (|v| ~ 1e±308) the scale or the product
  // can overflow; an unrounded key is still a valid, self-equal key,
  // whereas a NaN component would never equal itself.
  if (!std::isfinite(scale) || scale == 0.0) return v;
  const double rounded = std::round(v * scale) / scale;
  if (!std::isfinite(rounded)) return v;
  return rounded == 0.0 ? 0.0 : rounded;
}

std::vector<double> launchSignature(const runtime::Task& task) {
  std::vector<double> sig;
  sig.reserve(5 + task.sizeBindings.size());
  sig.push_back(static_cast<double>(task.globalSize));
  sig.push_back(static_cast<double>(task.localSize));
  sig.push_back(task.totalBytesIn());
  sig.push_back(task.totalBytesOut());
  sig.push_back(task.transferScale);
  // std::map iterates in name order, so the layout is deterministic.
  for (const auto& [name, value] : task.sizeBindings) {
    (void)name;
    sig.push_back(value);
  }
  return sig;
}

std::string programKey(const runtime::Task& task) {
  return task.programName + "/" + task.kernelName;
}

std::size_t DecisionKeyHash::operator()(const DecisionKey& k) const noexcept {
  return static_cast<std::size_t>(common::fnvU64(
      common::hashLaunchKey(k.machine, k.program, k.features),
      k.modelVersion));
}

common::Fingerprint launchFingerprint(std::uint32_t pairId,
                                      const runtime::Task& task,
                                      int roundDigits) noexcept {
  // Must fold exactly the values launchSignature() materializes, in the
  // same order and quantization, so the streaming (hit) and vector
  // (insert/merge) forms agree on every launch.
  common::FingerprintBuilder fb;
  fb.u64(pairId);
  fb.f64(roundSignificant(static_cast<double>(task.globalSize), roundDigits));
  fb.f64(roundSignificant(static_cast<double>(task.localSize), roundDigits));
  fb.f64(roundSignificant(task.totalBytesIn(), roundDigits));
  fb.f64(roundSignificant(task.totalBytesOut(), roundDigits));
  fb.f64(roundSignificant(task.transferScale, roundDigits));
  for (const auto& [name, value] : task.sizeBindings) {
    (void)name;
    fb.f64(roundSignificant(value, roundDigits));
  }
  return fb.take();
}

common::Fingerprint launchFingerprint(
    std::uint32_t pairId,
    const std::vector<double>& quantizedSignature) noexcept {
  common::FingerprintBuilder fb;
  fb.u64(pairId);
  for (const double v : quantizedSignature) fb.f64(v);
  return fb.take();
}

namespace {

constexpr std::uint64_t kOccupied = 1ull << 63;
// Meta word layout: occupied(1) | version(43) | label(20). 20 label bits
// cover a 10-device space at 10% steps (C(19,9) = 92378 labels) with
// headroom; keys that still do not fit are served uncached rather than
// failing (see insert()).
constexpr unsigned kLabelBits = 20;
constexpr std::uint64_t kLabelMask = (1ull << kLabelBits) - 1;
constexpr std::uint64_t kVersionMask = (1ull << (63 - kLabelBits)) - 1;

std::uint64_t packMeta(std::uint64_t version, std::size_t label) {
  return kOccupied | (version << kLabelBits) | label;
}
std::uint64_t metaVersion(std::uint64_t meta) {
  return (meta >> kLabelBits) & kVersionMask;
}
std::size_t metaLabel(std::uint64_t meta) {
  return static_cast<std::size_t>(meta & kLabelMask);
}

/// Collision verification ignores the stamped model version: two
/// generations of the same launch are the same identity.
bool sameIdentity(const DecisionKey& a, const DecisionKey& b) {
  return a.machine == b.machine && a.program == b.program &&
         a.features == b.features;
}

}  // namespace

DecisionCache::DecisionCache(std::size_t capacity, int roundDigits)
    : roundDigits_(roundDigits) {
  TP_REQUIRE(capacity > 0, "DecisionCache: capacity must be > 0");
  std::size_t n = 1;
  while (n < capacity) n <<= 1;
  numSlots_ = n;
  mask_ = n - 1;
  window_ = n < 16 ? n : 16;
  slots_ = std::vector<Slot>(numSlots_);
  fullKeys_ = std::make_unique<DecisionKey[]>(numSlots_);
  counterStripes_ = std::vector<CounterStripe>(common::defaultStripes());
}

DecisionKey DecisionCache::makeKey(std::string machine, std::string program,
                                   std::vector<double> features) const
    TP_LOCK_FREE_AUDITED(
        "acquire-load of the version word pairs with the acq_rel bump in "
        "bumpVersion/advanceVersion, so a key stamped with generation v "
        "observes generation v's models; TSan: test_serve_cache "
        "DecisionCacheDifferential.ConcurrentStreamWithVersionBumps") {
  DecisionKey key;
  key.machine = std::move(machine);
  key.program = std::move(program);
  key.modelVersion = version_.load(std::memory_order_acquire);
  key.features = std::move(features);
  for (double& f : key.features) f = roundSignificant(f, roundDigits_);
  return key;
}

std::optional<std::size_t> DecisionCache::lookup(
    const common::Fingerprint& fp, std::uint64_t version) noexcept {
  CounterStripe& counters = stripe();
  counters.lookups.fetch_add(1, std::memory_order_relaxed);
  const std::size_t home = static_cast<std::size_t>(fp.lo) & mask_;
  // Entries live anywhere inside the probe window (an earlier slot may
  // have been evicted since insertion), so the scan never early-exits on
  // an empty slot.
  for (std::size_t i = 0; i < window_; ++i) {
    Slot& slot = slots_[(home + i) & mask_];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 & 1u) continue;  // writer inside; retry the snapshot
      // Fence-free seqlock read: the acquire on each field load keeps the
      // revalidating seq load below from reordering above it (and TSan
      // models acquire loads, unlike thread fences).
      const std::uint64_t hi = slot.fpHi.load(std::memory_order_acquire);
      const std::uint64_t lo = slot.fpLo.load(std::memory_order_acquire);
      const std::uint64_t meta = slot.meta.load(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      // Consistent snapshot.
      if ((meta & kOccupied) != 0 && hi == fp.hi && lo == fp.lo &&
          metaVersion(meta) == version) {
        // CLOCK second chance: mark referenced, but only write the bit
        // when unset so steady-state hot hits stay read-only.
        if (slot.ref.load(std::memory_order_relaxed) == 0) {
          slot.ref.store(1, std::memory_order_relaxed);
        }
        counters.hits.fetch_add(1, std::memory_order_relaxed);
        return metaLabel(meta);
      }
      break;  // valid snapshot, not our entry at this version: next slot
    }
  }
  counters.misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void DecisionCache::insert(const common::Fingerprint& fp,
                           const DecisionKey& key, std::size_t label) {
  if (label > kLabelMask || key.modelVersion > kVersionMask) {
    // Does not fit the packed meta word (a pathologically huge
    // partitioning space, or a version counter beyond 2^43). Degrade to
    // uncached serving for this key — the model path still answers every
    // request — instead of turning every miss into a hard failure.
    return;
  }
  const std::size_t home = static_cast<std::size_t>(fp.lo) & mask_;
  CounterStripe& counters = stripe();
  for (int attempt = 0;; ++attempt) {
    // Candidate scan (unsynchronized reads; every decision is re-validated
    // inside the slot critical section below). Prefer, in order: the
    // slot already holding this fingerprint, an empty slot, the CLOCK
    // victim.
    std::size_t target = numSlots_;
    std::size_t empty = numSlots_;
    bool expectMatch = false;
    bool victimMode = false;
    for (std::size_t i = 0; i < window_; ++i) {
      const std::size_t at = (home + i) & mask_;
      const Slot& slot = slots_[at];
      const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      if ((meta & kOccupied) == 0) {
        if (empty == numSlots_) empty = at;
        continue;
      }
      if (slot.fpHi.load(std::memory_order_relaxed) == fp.hi &&
          slot.fpLo.load(std::memory_order_relaxed) == fp.lo) {
        target = at;
        expectMatch = true;
        break;
      }
    }
    if (target == numSlots_ && empty != numSlots_) target = empty;
    if (target == numSlots_) {
      // CLOCK second chance over the window: clear reference bits until an
      // unreferenced victim appears; if every entry was referenced, the
      // now-cleared home slot is the victim.
      for (std::size_t i = 0; i < window_; ++i) {
        const std::size_t at = (home + i) & mask_;
        if (slots_[at].ref.load(std::memory_order_relaxed) != 0) {
          slots_[at].ref.store(0, std::memory_order_relaxed);
        } else {
          target = at;
          break;
        }
      }
      if (target == numSlots_) target = home;
      victimMode = true;
    }

    Slot& slot = slots_[target];
    const std::uint32_t s = common::seqClaim(slot.seq);
    // A retrain may have raced ahead of this decision: never let a
    // stale-model label into the fresh cache generation. Checked inside
    // the critical section — the sweep claims every slot after the
    // version moved, so an insert that passes here either carries the
    // new version or its slot is visited (and cleared) by that sweep.
    if (key.modelVersion != version_.load(std::memory_order_acquire)) {
      common::seqRelease(slot.seq, s);
      return;
    }
    const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    const bool occupied = (meta & kOccupied) != 0;
    const bool fpEqual =
        occupied && slot.fpHi.load(std::memory_order_relaxed) == fp.hi &&
        slot.fpLo.load(std::memory_order_relaxed) == fp.lo;
    // Rescan when the slot changed under the candidate scan — the entry we
    // meant to refresh moved, or a racer filled the empty slot we chose —
    // rather than spuriously evicting whatever took it. (A deliberate
    // CLOCK victim is expected to be occupied.)
    const bool surprised =
        expectMatch ? !fpEqual : (occupied && !victimMode && !fpEqual);
    if (surprised && attempt < 3) {
      common::seqRelease(slot.seq, s);
      continue;
    }
    if (fpEqual) {
      // Refresh. Same fingerprint with a different full key is a detected
      // 128-bit collision: count it, newest key wins.
      if (!sameIdentity(fullKeys_[target], key)) {
        counters.collisions.fetch_add(1, std::memory_order_relaxed);
        fullKeys_[target] = key;
      }
    } else if (occupied) {
      counters.evictions.fetch_add(1, std::memory_order_relaxed);
      counters.insertions.fetch_add(1, std::memory_order_relaxed);
      fullKeys_[target] = key;
    } else {
      counters.insertions.fetch_add(1, std::memory_order_relaxed);
      fullKeys_[target] = key;
    }
    // Release stores, not relaxed: nothing orders a relaxed field store
    // after the seq-odd claim in other threads' view (on ARM a plain
    // store may become visible before the claim's release store), so a
    // lock-free reader could pair a new fingerprint with stale meta and
    // still validate against the old even seq. With release stores, a
    // reader whose acquire load observes any new field value also
    // observes seq as odd and retries.
    slot.fpHi.store(fp.hi, std::memory_order_release);
    slot.fpLo.store(fp.lo, std::memory_order_release);
    slot.meta.store(packMeta(key.modelVersion, label),
                    std::memory_order_release);
    slot.ref.store(1, std::memory_order_relaxed);  // advisory CLOCK bit only
    common::seqRelease(slot.seq, s);
    return;
  }
}

std::uint64_t DecisionCache::version() const noexcept
    TP_LOCK_FREE_AUDITED(
        "acquire-load pairing with the acq_rel version movement, see "
        "makeKey; TSan: test_serve_cache "
        "DecisionCacheDifferential.ConcurrentStreamWithVersionBumps") {
  return version_.load(std::memory_order_acquire);
}

std::uint64_t DecisionCache::bumpVersion()
    TP_LOCK_FREE_AUDITED(
        "acq_rel increment of the version word invalidates older "
        "generations; stale in-flight inserts are dropped inside the slot "
        "critical section; TSan: test_serve_cache "
        "DecisionCacheDifferential.ConcurrentStreamWithVersionBumps") {
  const std::uint64_t v = version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  clearStale();
  return v;
}

std::uint64_t DecisionCache::advanceVersion(std::uint64_t version)
    TP_LOCK_FREE_AUDITED(
        "acq_rel CAS race to move the version forward; exactly one winner "
        "sweeps, same contract as bumpVersion; TSan: test_serve_cache "
        "DecisionCacheDifferential.ConcurrentStreamWithVersionBumps") {
  std::uint64_t current = version_.load(std::memory_order_acquire);
  while (current < version &&
         !version_.compare_exchange_weak(current, version,
                                         std::memory_order_acq_rel)) {
  }
  if (current < version) {
    // We won the race to move the version forward: sweep, like
    // bumpVersion() does (fresh-version inserts racing the sweep survive).
    clearStale();
    return version;
  }
  return current;
}

void DecisionCache::sweep(bool staleOnly)
    TP_LOCK_FREE_AUDITED(
        "seqlock writer over every slot: claim odd, clear fields with "
        "release stores (a reader observing cleared fields also observes "
        "the odd sequence and retries), release even; TSan: "
        "test_serve_cache DecisionCacheDifferential."
        "ConcurrentStreamWithVersionBumps") {
  CounterStripe& counters = stripe();
  for (std::size_t i = 0; i < numSlots_; ++i) {
    Slot& slot = slots_[i];
    const std::uint32_t s = common::seqClaim(slot.seq);
    const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    const bool drop =
        (meta & kOccupied) != 0 &&
        (!staleOnly ||
         metaVersion(meta) != version_.load(std::memory_order_acquire));
    if (drop) {
      // Release for the same reason as insert(): a reader observing the
      // cleared fields must also observe the odd seq and retry.
      slot.meta.store(0, std::memory_order_release);
      slot.fpHi.store(0, std::memory_order_release);
      slot.fpLo.store(0, std::memory_order_release);
      slot.ref.store(0, std::memory_order_relaxed);
      fullKeys_[i] = DecisionKey{};  // release the key's heap storage
      counters.invalidations.fetch_add(1, std::memory_order_relaxed);
    }
    common::seqRelease(slot.seq, s);
  }
}

void DecisionCache::clearStale() { sweep(/*staleOnly=*/true); }

void DecisionCache::clear() { sweep(/*staleOnly=*/false); }

std::size_t DecisionCache::size() const
    TP_LOCK_FREE_AUDITED(
        "seqlock reader: acquire-load of the even sequence word, then meta, "
        "then a re-check; bounded retries, count is advisory under churn; "
        "TSan: test_serve_cache "
        "DecisionCacheContention.CountersAndCapacityStayConsistent") {
  std::size_t occupied = 0;
  for (const Slot& slot : slots_) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::uint32_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 & 1u) continue;
      const std::uint64_t meta = slot.meta.load(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      occupied += (meta & kOccupied) != 0 ? 1 : 0;
      break;
    }
  }
  return occupied;
}

CacheCounters DecisionCache::counters() const
    TP_LOCK_FREE_AUDITED(
        "relaxed sums over per-stripe monotonic counters; cross-stripe "
        "consistency is not promised; TSan: test_serve_cache "
        "DecisionCacheContention.CountersAndCapacityStayConsistent") {
  CacheCounters total;
  for (const CounterStripe& s : counterStripes_) {
    total.lookups += s.lookups.load(std::memory_order_relaxed);
    total.hits += s.hits.load(std::memory_order_relaxed);
    total.misses += s.misses.load(std::memory_order_relaxed);
    total.insertions += s.insertions.load(std::memory_order_relaxed);
    total.evictions += s.evictions.load(std::memory_order_relaxed);
    total.invalidations += s.invalidations.load(std::memory_order_relaxed);
    total.collisions += s.collisions.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace tp::serve
