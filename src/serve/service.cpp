#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <shared_mutex>
#include <vector>

#include "common/error.hpp"
#include "features/runtime_features.hpp"
#include "ocl/context.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/scheduler.hpp"

namespace tp::serve {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

struct PartitionService::PendingRequest {
  LaunchRequest request;
  std::promise<LaunchResponse> promise;
  Clock::time_point enqueued;
};

struct PartitionService::MachineState {
  sim::MachineConfig machine;
  runtime::PartitioningSpace space;

  mutable std::shared_mutex modelMutex;
  std::shared_ptr<const ml::Classifier> model;
  std::uint64_t modelVersion = 0;  ///< cache generation this model serves

  // Request queue + lane occupancy, guarded by queueMutex. Each lane owns
  // a private context/scheduler so simulated clocks never interleave.
  std::mutex queueMutex;
  std::deque<PendingRequest> queue;
  std::vector<std::unique_ptr<vcl::Context>> laneContexts;
  std::vector<std::unique_ptr<runtime::Scheduler>> lanes;
  std::vector<char> laneBusy;

  std::mutex statsMutex;
  std::uint64_t requests = 0;
  double makespanSum = 0.0;
  std::vector<double> deviceBusySeconds;

  MachineState(const sim::MachineConfig& m,
               std::shared_ptr<const ml::Classifier> mdl,
               const ServiceConfig& config)
      : machine(m),
        space(m.numDevices(), config.divisions),
        model(std::move(mdl)),
        deviceBusySeconds(m.numDevices(), 0.0) {
    const std::size_t numLanes = std::max<std::size_t>(1, config.lanesPerMachine);
    common::ThreadPool* computePool =
        config.execMode == vcl::ExecMode::Compute ? &common::globalThreadPool()
                                                  : nullptr;
    for (std::size_t l = 0; l < numLanes; ++l) {
      laneContexts.push_back(
          std::make_unique<vcl::Context>(machine, config.execMode, computePool));
      lanes.push_back(std::make_unique<runtime::Scheduler>(*laneContexts.back()));
    }
    laneBusy.assign(numLanes, 0);
  }
};

PartitionService::PartitionService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(std::make_unique<ShardedDecisionCache>(config_.cacheCapacity,
                                                    config_.cacheShards,
                                                    config_.cacheRoundDigits)),
      latency_(config_.latencyWindow) {
  if (config_.refine) {
    refiner_ = std::make_unique<adapt::Refiner>(config_.refiner);
  }
}

PartitionService::~PartitionService() { shutdown(); }

void PartitionService::addMachine(const sim::MachineConfig& machine,
                                  std::shared_ptr<const ml::Classifier> model) {
  TP_REQUIRE(model != nullptr, "PartitionService: null model for machine "
                                   << machine.name);
  TP_REQUIRE(machine.numDevices() > 0,
             "PartitionService: machine " << machine.name << " has no devices");
  auto state = std::make_unique<MachineState>(machine, std::move(model), config_);
  std::lock_guard<std::mutex> lock(machinesMutex_);
  // The worker pool is sized to the registered lanes at the first
  // submit(); a machine added later would run under-provisioned.
  TP_REQUIRE(pool_ == nullptr,
             "PartitionService: register machine "
                 << machine.name << " before the first submit()");
  TP_REQUIRE(machines_.count(machine.name) == 0,
             "PartitionService: machine " << machine.name
                                          << " already registered");
  if (feedback_ == nullptr) {
    feedback_ = std::make_unique<FeedbackRecorder>(state->space.size(),
                                                   config_.cacheRoundDigits);
  } else {
    // Feedback records share one CSV schema: the time vector is indexed by
    // partitioning label, so every machine must span the same space.
    const auto firstSize = machines_.begin()->second->space.size();
    TP_REQUIRE(state->space.size() == firstSize,
               "PartitionService: machine "
                   << machine.name << " has a partitioning space of size "
                   << state->space.size() << ", expected " << firstSize);
  }
  machines_.emplace(machine.name, std::move(state));
}

void PartitionService::addMachine(const sim::MachineConfig& machine,
                                  const std::string& modelPath) {
  addMachine(machine, std::shared_ptr<const ml::Classifier>(
                          ml::loadClassifierFile(modelPath)));
}

PartitionService::MachineState& PartitionService::state(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(machinesMutex_);
  const auto it = machines_.find(name);
  TP_REQUIRE(it != machines_.end(),
             "PartitionService: unknown machine '" << name << "'");
  return *it->second;
}

common::ThreadPool& PartitionService::ensurePool() {
  std::lock_guard<std::mutex> lock(machinesMutex_);
  if (pool_ == nullptr) {
    std::size_t threads = config_.workerThreads;
    if (threads == 0) {
      for (const auto& [name, ms] : machines_) {
        (void)name;
        threads += ms->lanes.size();
      }
    }
    pool_ = std::make_unique<common::ThreadPool>(
        std::max<std::size_t>(1, threads));
  }
  return *pool_;
}

std::future<LaunchResponse> PartitionService::submit(LaunchRequest request) {
  MachineState& ms = state(request.machine);
  common::ThreadPool& pool = ensurePool();

  PendingRequest pending;
  pending.enqueued = Clock::now();
  if (request.sizeLabel.empty()) {
    request.sizeLabel = "n=" + std::to_string(request.task.globalSize);
  }
  pending.request = std::move(request);
  std::future<LaunchResponse> future = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    TP_REQUIRE(accepting_, "PartitionService: submit after shutdown");
    ++inFlight_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(ms.queueMutex);
    ms.queue.push_back(std::move(pending));
    // Wake one idle lane; busy lanes will drain the queue in batches.
    for (std::size_t l = 0; l < ms.laneBusy.size(); ++l) {
      if (!ms.laneBusy[l]) {
        ms.laneBusy[l] = 1;
        pool.submit([this, &ms, l] { workerLoop(ms, l); });
        break;
      }
    }
  }
  return future;
}

LaunchResponse PartitionService::call(LaunchRequest request) {
  return submit(std::move(request)).get();
}

void PartitionService::workerLoop(MachineState& ms, std::size_t lane) {
  while (true) {
    std::vector<PendingRequest> batch;
    {
      std::lock_guard<std::mutex> lock(ms.queueMutex);
      if (ms.queue.empty()) {
        ms.laneBusy[lane] = 0;
        return;
      }
      const std::size_t take =
          std::min(std::max<std::size_t>(1, config_.maxBatch), ms.queue.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(ms.queue.front()));
        ms.queue.pop_front();
      }
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = maxBatch_.load(std::memory_order_relaxed);
    while (seen < batch.size() &&
           !maxBatch_.compare_exchange_weak(seen, batch.size(),
                                            std::memory_order_relaxed)) {
    }
    for (auto& pending : batch) {
      process(ms, lane, std::move(pending));
    }
  }
}

std::size_t PartitionService::predictWithModel(
    const MachineState& ms, const runtime::Task& task) const {
  const auto x =
      features::combinedFeatureVector(task.features, task.launchInfo());
  std::shared_lock<std::shared_mutex> lock(ms.modelMutex);
  const int label = ms.model->predict(x);
  TP_REQUIRE(label >= 0 && static_cast<std::size_t>(label) < ms.space.size(),
             "PartitionService: model for "
                 << ms.machine.name << " predicted label " << label
                 << " outside the space of " << ms.space.size());
  return static_cast<std::size_t>(label);
}

void PartitionService::process(MachineState& ms, std::size_t lane,
                               PendingRequest pending) {
  LaunchResponse response;
  bool ok = false;
  try {
    const runtime::Task& task = pending.request.task;
    DecisionKey key = cache_->makeKey(ms.machine.name, programKey(task),
                                      launchSignature(task));
    response.modelVersion = key.modelVersion;
    if (const auto hit = cache_->lookup(key)) {
      response.label = *hit;
      response.cacheHit = true;
    } else {
      response.label = predictWithModel(ms, task);
      cache_->insert(key, response.label);
    }
    adapt::RefineKey refineKey;
    if (refiner_ != nullptr) {
      // The refiner may override the baseline: probes bypass the cache,
      // and an adopted win replaces the cached decision outright.
      refineKey.machine = key.machine;
      refineKey.program = key.program;
      refineKey.signature = key.features;
      const adapt::RefineDecision rd = refiner_->decide(
          refineKey, key.modelVersion, response.label, ms.space);
      response.explored = rd.explore;
      response.refined = rd.refined;
      if (rd.label != response.label || rd.explore) {
        response.cacheHit = false;
        response.label = rd.label;
      }
    }
    response.partitioning = ms.space.at(response.label);
    response.execution =
        ms.lanes[lane]->execute(task, response.partitioning);

    if (refiner_ != nullptr) {
      const adapt::Observation obs =
          refiner_->observe(refineKey, key.modelVersion, response.label,
                            response.execution.makespan, ms.space);
      if (obs.improved) {
        // Measured win: future lookups of this signature serve the
        // refined label (a stale-version key is dropped harmlessly).
        cache_->insert(key, obs.bestLabel);
      } else if (obs.tracked && response.refined && !response.explored &&
                 !response.cacheHit) {
        // Exploiting a previously adopted win whose cache entry may have
        // been evicted (the miss path then re-inserted the raw model
        // label): reinstall the *current* incumbent — not this request's
        // own label, which a concurrent probe's win may have superseded.
        cache_->insert(key, obs.bestLabel);
      }
    }

    if (config_.recordFeedback) {
      feedback_->record(task, ms.machine, ms.space,
                        pending.request.sizeLabel);
    }

    {
      std::lock_guard<std::mutex> lock(ms.statsMutex);
      ++ms.requests;
      ms.makespanSum += response.execution.makespan;
      for (const auto& dev : response.execution.devices) {
        ms.deviceBusySeconds[dev.device] += dev.transferInSeconds +
                                            dev.kernelSeconds +
                                            dev.transferOutSeconds;
      }
    }
    ok = true;
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    pending.promise.set_exception(std::current_exception());
  }
  if (ok) {
    latency_.add(secondsSince(pending.enqueued));
    completed_.fetch_add(1, std::memory_order_relaxed);
    pending.promise.set_value(std::move(response));
  }
  {
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    --inFlight_;
    if (inFlight_ == 0) idleCv_.notify_all();
  }
}

std::size_t PartitionService::predictLabel(const std::string& machine,
                                           const runtime::Task& task) const {
  return predictWithModel(state(machine), task);
}

PartitionService::RetrainResult PartitionService::retrain() {
  RetrainResult result;
  TP_REQUIRE(feedback_ != nullptr,
             "PartitionService: retrain before any machine was added");
  const runtime::FeatureDatabase db = feedback_->snapshot();
  result.recordsUsed = db.size();

  std::vector<MachineState*> states;
  {
    std::lock_guard<std::mutex> lock(machinesMutex_);
    states.reserve(machines_.size());
    for (const auto& [name, ms] : machines_) {
      (void)name;
      states.push_back(ms.get());
    }
  }
  for (MachineState* ms : states) {
    if (db.forMachine(ms->machine.name).empty()) continue;
    // Train outside the model lock: serving continues on the old model
    // until the swap below.
    auto model = runtime::trainDeploymentModel(
        db, ms->machine.name, config_.retrainSpec,
        runtime::FeatureSet::Combined, config_.retrainSeed);
    {
      std::unique_lock<std::shared_mutex> lock(ms->modelMutex);
      ms->model = std::move(model);
    }
    ++result.machinesRetrained;
  }
  // New generation: every cached decision of the old models is stale.
  // (Swap-then-bump: a prediction racing the swap is cached under the old
  // version and swept here; the reverse order would let old-model labels
  // survive into the new generation.)
  result.modelVersion = cache_->bumpVersion();
  // Version plumbing: stamp every machine with the generation its model
  // now serves, so stats and the refiner's decay agree on "current".
  for (MachineState* ms : states) {
    std::unique_lock<std::shared_mutex> lock(ms->modelMutex);
    ms->modelVersion = result.modelVersion;
  }
  retrains_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::uint64_t PartitionService::modelVersion() const noexcept {
  return cache_->version();
}

std::vector<PartitionService::DeployedModel> PartitionService::deployedModels()
    const {
  std::vector<DeployedModel> out;
  std::lock_guard<std::mutex> lock(machinesMutex_);
  out.reserve(machines_.size());
  for (const auto& [name, ms] : machines_) {
    std::shared_lock<std::shared_mutex> modelLock(ms->modelMutex);
    out.push_back(DeployedModel{name, ms->model});
  }
  return out;
}

std::vector<adapt::WinRecord> PartitionService::exportRefinedWins(
    bool refinedOnly) const {
  if (refiner_ == nullptr) return {};
  return refiner_->exportWins(refinedOnly);
}

adapt::MergeResult PartitionService::mergeRemoteWins(
    const std::vector<adapt::WinRecord>& wins) {
  adapt::MergeResult result;
  std::size_t spaceSize = 0;
  {
    // Every machine spans the same space (enforced by addMachine), so
    // any registered one bounds the valid labels.
    std::lock_guard<std::mutex> lock(machinesMutex_);
    if (!machines_.empty()) spaceSize = machines_.begin()->second->space.size();
  }
  if (refiner_ == nullptr || spaceSize == 0) {
    result.dropped = wins.size();
    return result;
  }
  // Remote state is wire-decoded and not ours to trust: a label outside
  // the partitioning space would be elected, cached, and then throw on
  // every warm request for its key. Drop such records at the edge.
  std::vector<adapt::WinRecord> valid;
  valid.reserve(wins.size());
  for (const adapt::WinRecord& rec : wins) {
    const bool labelsOk =
        rec.baseLabel < spaceSize && rec.incumbentLabel < spaceSize &&
        std::all_of(rec.arms.begin(), rec.arms.end(),
                    [&](const adapt::WinArm& arm) {
                      return arm.label < spaceSize;
                    });
    if (labelsOk) {
      valid.push_back(rec);
    } else {
      ++result.dropped;
    }
  }
  const std::uint64_t version = cache_->version();
  const adapt::MergeResult merged = refiner_->mergeWins(valid, version);
  result.adopted = merged.adopted;
  result.updated = merged.updated;
  result.stale = merged.stale;
  result.dropped += merged.dropped;
  // Write adopted incumbents through into the decision cache, so warm
  // lookups serve the merged win immediately. The incumbent is re-read
  // from the refiner (not taken from the record): a concurrent local
  // observation or a better peer record may have superseded it.
  for (const adapt::WinRecord& rec : valid) {
    if (rec.modelVersion != version) continue;
    const auto inc = refiner_->incumbent(rec.key, version);
    if (!inc.tracked) continue;
    DecisionKey key;
    key.machine = rec.key.machine;
    key.program = rec.key.program;
    key.modelVersion = version;
    key.features = rec.key.signature;  // already quantized by the sender
    cache_->insert(key, inc.label);
  }
  return result;
}

void PartitionService::installModels(const std::vector<ModelUpdate>& updates,
                                     std::uint64_t version) {
  TP_REQUIRE(version >= cache_->version(),
             "PartitionService: installModels would move the generation "
             "backward (" << version << " < " << cache_->version() << ")");
  std::vector<MachineState*> states;
  {
    std::lock_guard<std::mutex> lock(machinesMutex_);
    for (const ModelUpdate& update : updates) {
      TP_REQUIRE(update.model != nullptr,
                 "PartitionService: null model for machine "
                     << update.machine);
      const auto it = machines_.find(update.machine);
      TP_REQUIRE(it != machines_.end(),
                 "PartitionService: installModels for unknown machine '"
                     << update.machine << "'");
      std::unique_lock<std::shared_mutex> modelLock(it->second->modelMutex);
      it->second->model = update.model;
    }
    states.reserve(machines_.size());
    for (const auto& [name, ms] : machines_) {
      (void)name;
      states.push_back(ms.get());
    }
  }
  // Swap-then-advance, like retrain(): decisions racing the swap are
  // cached under the old generation and swept by the advance.
  const std::uint64_t before = cache_->version();
  const std::uint64_t current = cache_->advanceVersion(version);
  if (version == before) {
    // Same-generation install (snapshot warm-start at the current
    // generation, or a second retrain coordinator racing to the same
    // number): advanceVersion was a no-op and swept nothing, but the
    // previous models' labels must not keep serving as cache hits under
    // a generation they no longer belong to. Drop everything.
    cache_->clear();
  }
  for (MachineState* ms : states) {
    std::unique_lock<std::shared_mutex> lock(ms->modelMutex);
    ms->modelVersion = current;
  }
}

runtime::FeatureDatabase PartitionService::trafficSnapshot() const {
  TP_REQUIRE(feedback_ != nullptr,
             "PartitionService: no feedback schema before addMachine()");
  return feedback_->snapshot();
}

void PartitionService::drain() {
  std::unique_lock<std::mutex> lock(lifecycleMutex_);
  idleCv_.wait(lock, [this] { return inFlight_ == 0; });
}

void PartitionService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    accepting_ = false;
  }
  drain();
  // Wait for lane workers to finish their queue-empty bookkeeping before
  // any member they touch can be destroyed.
  common::ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(machinesMutex_);
    pool = pool_.get();
  }
  if (pool != nullptr) pool->waitIdle();
}

ServiceStats PartitionService::stats() const {
  ServiceStats s;
  s.requestsSubmitted = submitted_.load(std::memory_order_relaxed);
  s.requestsCompleted = completed_.load(std::memory_order_relaxed);
  s.requestsFailed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.maxBatch = maxBatch_.load(std::memory_order_relaxed);
  s.cache = cache_->counters();
  s.cacheHitRate = s.cache.hitRate();
  s.modelVersion = cache_->version();
  s.retrains = retrains_.load(std::memory_order_relaxed);
  s.feedbackRecords = feedback_ != nullptr ? feedback_->size() : 0;
  if (refiner_ != nullptr) {
    s.refiner = refiner_->counters();
    s.refinedKeys = refiner_->trackedKeys();
  }
  s.latency = latency_.summary();

  std::lock_guard<std::mutex> lock(machinesMutex_);
  for (const auto& [name, ms] : machines_) {
    (void)name;
    MachineStats m;
    m.machine = ms->machine.name;
    {
      std::shared_lock<std::shared_mutex> modelLock(ms->modelMutex);
      m.modelVersion = ms->modelVersion;
    }
    std::lock_guard<std::mutex> statsLock(ms->statsMutex);
    m.requests = ms->requests;
    m.makespanSeconds = ms->makespanSum;
    for (std::size_t d = 0; d < ms->deviceBusySeconds.size(); ++d) {
      DeviceUtilization util;
      util.device = ms->machine.devices[d].name;
      util.busySeconds = ms->deviceBusySeconds[d];
      util.utilization =
          ms->makespanSum > 0.0 ? util.busySeconds / ms->makespanSum : 0.0;
      m.devices.push_back(std::move(util));
    }
    s.machines.push_back(std::move(m));
  }
  return s;
}

const runtime::PartitioningSpace& PartitionService::space(
    const std::string& machine) const {
  return state(machine).space;
}

void PartitionService::saveTraffic(const std::string& path) const {
  TP_REQUIRE(feedback_ != nullptr,
             "PartitionService: no traffic recorded yet");
  feedback_->saveCsv(path);
}

}  // namespace tp::serve
