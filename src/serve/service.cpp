#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/striped.hpp"
#include "features/runtime_features.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "ocl/context.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/scheduler.hpp"

namespace tp::serve {

namespace {

using Clock = obs::Clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::size_t autoInlineLanes(std::size_t configured) {
  // The default tracks the stripe heuristic (2x hardware concurrency in
  // [16, 64]): enough lanes that concurrent warm callers rarely collide,
  // bounded so lane *slots* stay cheap — contexts are built lazily on
  // first claim, so unused lanes cost a few pointers.
  return configured != 0 ? configured : common::defaultStripes();
}

}  // namespace

struct PartitionService::PendingRequest {
  LaunchRequest request;
  std::promise<LaunchResponse> promise;
  Clock::time_point enqueued;
  PreDecision carry;
};

struct PartitionService::MachineState {
  sim::MachineConfig machine;
  runtime::PartitioningSpace space;

  mutable common::SharedMutex modelMutex;
  std::shared_ptr<const ml::Classifier> model TP_GUARDED_BY(modelMutex);
  /// Cache generation this model serves.
  std::uint64_t modelVersion TP_GUARDED_BY(modelMutex) = 0;

  // Request queue + lane occupancy, guarded by queueMutex. Each lane owns
  // a private context/scheduler so simulated clocks never interleave.
  common::Mutex queueMutex;
  std::deque<PendingRequest> queue TP_GUARDED_BY(queueMutex);
  // laneContexts/lanes are built once in the constructor; a worker only
  // touches lanes[l] while it owns laneBusy[l] (set under queueMutex), so
  // the vectors themselves are immutable and carry no guard.
  std::vector<std::unique_ptr<vcl::Context>> laneContexts;
  std::vector<std::unique_ptr<runtime::Scheduler>> lanes;
  std::vector<char> laneBusy TP_GUARDED_BY(queueMutex);

  // Inline execution lanes for cache hits served on caller threads.
  // Claimed with a single CAS, never a mutex; like the queue lanes, each
  // owns a private context/scheduler, so simulated clocks stay isolated
  // and inline results are bit-identical to lane-worker results
  // (Scheduler::execute resets clocks per call). The context/scheduler
  // are built lazily by the first claimer (the claim CAS serializes
  // ownership; busy release/acquire publishes the construction), so
  // startup cost scales with actual client concurrency, not with
  // cores x machines.
  struct InlineLane {
    std::atomic<std::uint32_t> busy{0};
    std::unique_ptr<vcl::Context> context;
    std::unique_ptr<runtime::Scheduler> scheduler;
  };
  std::vector<InlineLane> inlineLanes;
  common::ThreadPool* computePool = nullptr;  ///< Compute-mode helper pool

  MachineLoadStats load;  ///< striped per-thread request accounting
  /// Sliding-window SLO judgment; set when config.slo.enabled(). Fed by
  /// recordLatency on both serving paths, drained by sloReport() and the
  /// latency_slo detector.
  std::unique_ptr<obs::SloTracker> slo;

  // Admission breaker (ServiceConfig::breaker). The warm path touches
  // only admitTick (relaxed bump) and shedding (relaxed load); everything
  // else belongs to the single evaluation winner holding evalBusy via
  // ClaimGuard — the claim's acq_rel CAS orders the streak/prev fields
  // between consecutive winners, so they need no mutex and no atomics.
  std::atomic<std::uint64_t> admitTick{0};
  std::atomic<std::uint32_t> evalBusy{0};
  std::atomic<std::uint32_t> shedding{0};
  std::size_t hotStreak = 0;            ///< evalBusy holder only
  std::size_t coolStreak = 0;           ///< evalBusy holder only
  std::uint64_t prevSubmitted = 0;      ///< evalBusy holder only
  std::uint64_t prevExhausted = 0;      ///< evalBusy holder only

  MachineState(const sim::MachineConfig& m,
               std::shared_ptr<const ml::Classifier> mdl,
               const ServiceConfig& config)
      : machine(m),
        space(m.numDevices(), config.divisions),
        model(std::move(mdl)),
        load(m.numDevices()) {
    const std::size_t numLanes = std::max<std::size_t>(1, config.lanesPerMachine);
    computePool =
        config.execMode == vcl::ExecMode::Compute ? &common::globalThreadPool()
                                                  : nullptr;
    for (std::size_t l = 0; l < numLanes; ++l) {
      laneContexts.push_back(
          std::make_unique<vcl::Context>(machine, config.execMode, computePool));
      lanes.push_back(std::make_unique<runtime::Scheduler>(*laneContexts.back()));
    }
    laneBusy.assign(numLanes, 0);
    inlineLanes = std::vector<InlineLane>(autoInlineLanes(config.inlineLanes));
    if (config.slo.enabled()) {
      slo = std::make_unique<obs::SloTracker>(config.slo);
    }
  }
};

PartitionService::PartitionService(ServiceConfig config)
    : config_(std::move(config)),
      interner_(std::make_unique<common::PairInterner>(config_.internCapacity)),
      cache_(std::make_unique<DecisionCache>(config_.cacheCapacity,
                                             config_.cacheRoundDigits)),
      latency_(config_.latencyWindow) {
  if (config_.refine) {
    // The refiner reuses the serving fingerprint scheme: keys map through
    // the same intern table + launchFingerprint as the decision cache, so
    // the warm path's fingerprint addresses both structures. Pairs the
    // intern table cannot hold serve unrefined.
    refiner_ = std::make_unique<adapt::Refiner>(
        config_.refiner,
        [this](const adapt::RefineKey& key)
            -> std::optional<common::Fingerprint> {
          const std::uint32_t pairId =
              interner_->intern(key.machine, key.program);
          if (pairId == common::PairInterner::kInvalid) return std::nullopt;
          return launchFingerprint(pairId, key.signature);
        });
  }
  if (config_.metrics != nullptr) registerMetrics();
}

PartitionService::~PartitionService() {
  shutdown();
  if (config_.metrics != nullptr) {
    // Drops the readout callbacks (they capture `this`) and the owned
    // latency histogram; no request can be in flight after shutdown().
    config_.metrics->removeByPrefix(config_.metricsPrefix);
  }
}

void PartitionService::registerMetrics()
    TP_LOCK_FREE_AUDITED(
        "registers readout lambdas doing relaxed loads of independent "
        "monotonic stat words; per-word exactness is the contract; TSan: "
        "test_serve PartitionService.StatsConcurrentWithAddMachineIs"
        "Consistent") {
  obs::Registry& reg = *config_.metrics;
  const std::string& p = config_.metricsPrefix;
  reg.registerCounter(p + "requests_submitted",
                      [this] { return submitted_.total(); });
  reg.registerCounter(p + "requests_completed",
                      [this] { return completed_.total(); });
  reg.registerCounter(p + "requests_failed",
                      [this] { return failed_.total(); });
  reg.registerCounter(p + "requests_inline",
                      [this] { return inlineHits_.total(); });
  reg.registerCounter(p + "inline_lane_exhausted",
                      [this] { return inlineLaneExhausted_.total(); });
  reg.registerCounter(p + "requests_shed", [this] { return shed_.total(); });
  reg.registerCounter(p + "breaker_trips", [this] {
    return breakerTrips_.load(std::memory_order_relaxed);
  });
  reg.registerGauge(p + "breaker_open", [this] {
    // Number of machines currently shedding (0 = all breakers closed).
    double open = 0.0;
    common::MutexLock lock(machinesMutex_);
    for (const auto& [name, ms] : machines_) {
      (void)name;
      if (ms->shedding.load(std::memory_order_relaxed) != 0) open += 1.0;
    }
    return open;
  });
  reg.registerCounter(p + "batches", [this] {
    return batches_.load(std::memory_order_relaxed);
  });
  reg.registerGauge(p + "max_batch", [this] {
    return static_cast<double>(maxBatch_.load(std::memory_order_relaxed));
  });
  reg.registerCounter(p + "retrains", [this] {
    return retrains_.load(std::memory_order_relaxed);
  });
  reg.registerGauge(p + "model_version", [this] {
    return static_cast<double>(cache_->version());
  });
  reg.registerCounter(p + "cache.lookups",
                      [this] { return cache_->counters().lookups; });
  reg.registerCounter(p + "cache.hits",
                      [this] { return cache_->counters().hits; });
  reg.registerCounter(p + "cache.misses",
                      [this] { return cache_->counters().misses; });
  reg.registerCounter(p + "cache.insertions",
                      [this] { return cache_->counters().insertions; });
  reg.registerCounter(p + "cache.evictions",
                      [this] { return cache_->counters().evictions; });
  reg.registerCounter(p + "cache.invalidations",
                      [this] { return cache_->counters().invalidations; });
  reg.registerCounter(p + "cache.collisions",
                      [this] { return cache_->counters().collisions; });
  reg.registerGauge(p + "cache.hit_rate",
                    [this] { return cache_->counters().hitRate(); });
  reg.registerGauge(p + "interned_pairs", [this] {
    return static_cast<double>(interner_->size());
  });
  reg.registerCounter(p + "intern_rejections",
                      [this] { return interner_->fullRejections(); });
  if (refiner_ != nullptr) {
    reg.registerCounter(p + "refiner.decisions",
                        [this] { return refiner_->counters().decisions; });
    reg.registerCounter(p + "refiner.explorations",
                        [this] { return refiner_->counters().explorations; });
    reg.registerCounter(p + "refiner.exploitations",
                        [this] { return refiner_->counters().exploitations; });
    reg.registerCounter(p + "refiner.observations",
                        [this] { return refiner_->counters().observations; });
    reg.registerCounter(p + "refiner.wins",
                        [this] { return refiner_->counters().wins; });
    reg.registerCounter(p + "refiner.merged_wins",
                        [this] { return refiner_->counters().mergedWins; });
    reg.registerCounter(p + "refiner.resets",
                        [this] { return refiner_->counters().resets; });
    reg.registerCounter(p + "refiner.stale_observations", [this] {
      return refiner_->counters().staleObservations;
    });
    reg.registerCounter(p + "refiner.untracked",
                        [this] { return refiner_->counters().untracked; });
    reg.registerGauge(p + "refiner.tracked_keys", [this] {
      return static_cast<double>(refiner_->trackedKeys());
    });
  }
  reg.registerSummary(p + "latency", [this] {
    const LatencyRecorder::Summary s = latency_.summary();
    return obs::SummarySnapshot{s.count, s.meanSeconds, s.maxSeconds,
                                s.p50Seconds, s.p95Seconds};
  });
  obsLatency_ = &reg.histogram(p + "latency_ns");
}

void PartitionService::recordLatency(MachineState& ms, double seconds) noexcept {
  latency_.add(seconds);
  const auto ns = static_cast<std::uint64_t>(seconds * 1e9);
  if (obsLatency_ != nullptr) obsLatency_->record(ns);
  if (ms.slo != nullptr) ms.slo->record(ns);
}

void PartitionService::addMachine(const sim::MachineConfig& machine,
                                  std::shared_ptr<const ml::Classifier> model) {
  TP_REQUIRE(model != nullptr, "PartitionService: null model for machine "
                                   << machine.name);
  TP_REQUIRE(machine.numDevices() > 0,
             "PartitionService: machine " << machine.name << " has no devices");
  auto state = std::make_unique<MachineState>(machine, std::move(model), config_);
  MachineState* ms = state.get();
  {
    common::MutexLock lock(machinesMutex_);
    // The worker pool is sized to the registered lanes at the first
    // submit(), and the machine map is read lock-free afterwards; a machine
    // added later would be both under-provisioned and unsynchronized.
    TP_REQUIRE(pool_ == nullptr,
               "PartitionService: register machine "
                   << machine.name << " before the first submit()");
    TP_REQUIRE(machines_.count(machine.name) == 0,
               "PartitionService: machine " << machine.name
                                            << " already registered");
    if (feedback_ == nullptr) {
      feedback_ = std::make_unique<FeedbackRecorder>(state->space.size(),
                                                     config_.cacheRoundDigits);
    } else {
      // Feedback records share one CSV schema: the time vector is indexed by
      // partitioning label, so every machine must span the same space.
      const auto firstSize = machines_.begin()->second->space.size();
      TP_REQUIRE(state->space.size() == firstSize,
                 "PartitionService: machine "
                     << machine.name << " has a partitioning space of size "
                     << state->space.size() << ", expected " << firstSize);
    }
    machines_.emplace(machine.name, std::move(state));
  }
  if (config_.metrics != nullptr && ms->slo != nullptr) {
    // Per-machine SLO gauges. The closures capture the MachineState
    // pointer directly: machines are never removed, report() is a
    // thread-safe snapshot surface, and the destructor's removeByPrefix
    // unhooks these before the state is destroyed.
    obs::Registry& reg = *config_.metrics;
    const std::string p = config_.metricsPrefix + "slo." + machine.name + ".";
    reg.registerGauge(p + "p99_seconds",
                      [ms] { return ms->slo->report().p99Seconds; });
    reg.registerGauge(p + "p999_seconds",
                      [ms] { return ms->slo->report().p999Seconds; });
    reg.registerGauge(p + "burn_rate_p99",
                      [ms] { return ms->slo->report().burnRateP99; });
    reg.registerGauge(p + "burn_rate_p999",
                      [ms] { return ms->slo->report().burnRateP999; });
    reg.registerGauge(p + "breached",
                      [ms] { return ms->slo->report().breached ? 1.0 : 0.0; });
  }
}

void PartitionService::addMachine(const sim::MachineConfig& machine,
                                  const std::string& modelPath) {
  addMachine(machine, std::shared_ptr<const ml::Classifier>(
                          ml::loadClassifierFile(modelPath)));
}

PartitionService::MachineState* PartitionService::stateFast(
    const std::string& name) const noexcept {
  // Only valid once frozen_: from then on machines_ is immutable, so the
  // map lookup (string compares, no allocation) is safe without the lock.
  const auto it = machines_.find(name);
  return it == machines_.end() ? nullptr : it->second.get();
}

PartitionService::MachineState& PartitionService::state(
    const std::string& name) const {
  if (frozen_.load(std::memory_order_acquire)) {
    MachineState* ms = stateFast(name);
    TP_REQUIRE(ms != nullptr,
               "PartitionService: unknown machine '" << name << "'");
    return *ms;
  }
  common::MutexLock lock(machinesMutex_);
  const auto it = machines_.find(name);
  TP_REQUIRE(it != machines_.end(),
             "PartitionService: unknown machine '" << name << "'");
  return *it->second;
}

DecisionKey PartitionService::fullKeyAt(const MachineState& ms,
                                        const runtime::Task& task,
                                        std::uint64_t version) const {
  DecisionKey key;
  key.machine = ms.machine.name;
  key.program = programKey(task);
  key.modelVersion = version;
  key.features = launchSignature(task);
  for (double& f : key.features) {
    f = roundSignificant(f, config_.cacheRoundDigits);
  }
  return key;
}

common::ThreadPool& PartitionService::ensurePool() {
  if (frozen_.load(std::memory_order_acquire)) return poolPostFreeze();
  common::MutexLock lock(machinesMutex_);
  if (pool_ == nullptr) {
    std::size_t threads = config_.workerThreads;
    if (threads == 0) {
      for (const auto& [name, ms] : machines_) {
        (void)name;
        threads += ms->lanes.size();
      }
    }
    pool_ = std::make_unique<common::ThreadPool>(
        std::max<std::size_t>(1, threads));
  }
  // Publishes pool_ AND freezes machines_ for lock-free reads.
  frozen_.store(true, std::memory_order_release);
  return *pool_;
}

// seq_cst (deliberate, A1-explicit): the in-flight latch and the
// accepting_ gate form a Dekker-style pair with drain()/shutdown() —
// weaker orders would let a final decrement and the drain's load pass
// each other and strand the waiter.
void PartitionService::requestDone() noexcept
    TP_LOCK_FREE_AUDITED(
        "seq_cst completion latch: final decrement notifies drain()'s "
        "seq_cst wait loop; TSan: test_serve "
        "PartitionService.RetrainUnderLiveTrafficDoesNotDeadlock") {
  if (inFlight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    inFlight_.notify_all();
  }
}

bool PartitionService::tryServeInline(MachineState& ms,
                                      const LaunchRequest& request,
                                      LaunchResponse& response,
                                      PreDecision& carry)
    TP_LOCK_FREE_AUDITED(
        "acquire-load of frozen_ pairs with its release store (publishes "
        "pool_ and the machine map); lane ownership is a ClaimGuard CAS "
        "claim released on every path including unwind; TSan: test_serve "
        "PartitionService.ConcurrentClientsGetConsistentDecisions") {
  // Pre-freeze traffic takes the queue path (which initializes the pool
  // and freezes the machine map).
  if (!frozen_.load(std::memory_order_acquire)) return false;
  const runtime::Task& task = request.task;

  // Allocation-free decision fast path: interned pair id -> streamed
  // 128-bit fingerprint -> lock-free cache probe.
  const std::uint32_t pairId =
      interner_->find(request.machine, task.programName, task.kernelName);
  if (pairId == common::PairInterner::kInvalid) return false;  // first sighting
  carry.fingerprinted = true;
  carry.pairId = pairId;
  carry.version = cache_->version();
  carry.fp = launchFingerprint(pairId, task, config_.cacheRoundDigits);
  carry.lookedUp = true;
  const auto hit = cache_->lookup(carry.fp, carry.version);
  if (!hit.has_value()) return false;  // miss: model inference on a lane
  carry.decided = true;
  carry.label = *hit;
  carry.cacheHit = true;

  if (refiner_ != nullptr) {
    // The refiner may override the cached baseline. Probes enqueue for
    // lane workers (carrying this decision — it is made exactly once);
    // exploit decisions stay inline. nullptr key: a hit whose refiner
    // entry is missing serves unrefined rather than re-materializing key
    // strings on the warm path.
    const adapt::RefineDecision rd = refiner_->decide(
        carry.fp, nullptr, carry.version, carry.label, ms.space);
    carry.explore = rd.explore;
    carry.refined = rd.refined;
    if (rd.label != carry.label || rd.explore) {
      carry.cacheHit = false;
      carry.label = rd.label;
    }
    if (rd.explore) return false;  // probe: batching queue
  }

  // Claim an inline lane with one CAS; all busy -> batching queue (the
  // decision travels along). Start the scan at a per-thread offset so
  // concurrent callers spread over lanes instead of convoying on lane 0.
  // The RAII guard keeps the claim exception-safe: any throw below
  // releases the lane on unwind instead of leaking it (lint rule A3).
  const std::size_t numLanes = ms.inlineLanes.size();
  const std::size_t start = common::threadStripe(numLanes);
  MachineState::InlineLane* lane = nullptr;
  std::optional<common::ClaimGuard> claim;
  for (std::size_t i = 0; i < numLanes; ++i) {
    MachineState::InlineLane& candidate =
        ms.inlineLanes[(start + i) % numLanes];
    claim.emplace(candidate.busy);
    if (claim->claimed()) {
      lane = &candidate;
      break;
    }
  }
  if (lane == nullptr) {
    inlineLaneExhausted_.add();
    return false;
  }

  // Sampled (1-in-N per thread): the warm path stays allocation- and
  // lock-free; an unsampled pass costs one relaxed load + branch.
  TP_TRACE_SPAN_SAMPLED("serve.inline_hit", task.globalSize);
  const auto start_time = Clock::now();
  response.label = carry.label;
  response.cacheHit = carry.cacheHit;
  response.modelVersion = carry.version;
  response.explored = false;
  response.refined = carry.refined;
  if (lane->scheduler == nullptr) {
    // First claim of this lane: build its private context/scheduler now
    // (one-time; we own the lane exclusively until the busy release).
    lane->context = std::make_unique<vcl::Context>(
        ms.machine, config_.execMode, ms.computePool);
    lane->scheduler = std::make_unique<runtime::Scheduler>(*lane->context);
  }
  finishDecided(ms, *lane->scheduler, task, response, carry);
  // Release the lane before the feedback/stat trailing work — none of it
  // touches lane state, so the next claimant can start immediately.
  claim->release();
  // Post-freeze path (checked on entry), so the recorder pointer is
  // immutable and read through the audited accessor.
  FeedbackRecorder* feedback = feedbackPostFreeze();
  if (config_.recordFeedback && feedback != nullptr &&
      feedbackBackfill_.load(std::memory_order_relaxed)) {
    // Remote wins were merged into the cache at some point: this hit may
    // be a launch that never missed locally. Backfill through the
    // recorder's dedup so retrain() still sees it (see feedbackBackfill_).
    feedback->record(task, ms.machine, ms.space,
                     request.sizeLabel.empty()
                         ? "n=" + std::to_string(task.globalSize)
                         : request.sizeLabel);
  }
  recordLatency(ms, secondsSince(start_time));
  completed_.add();
  inlineHits_.add();
  return true;
}

void PartitionService::finishDecided(MachineState& ms,
                                     runtime::Scheduler& lane,
                                     const runtime::Task& task,
                                     LaunchResponse& response,
                                     const PreDecision& decision) {
  response.partitioning = ms.space.at(response.label);
  response.execution = lane.execute(task, response.partitioning);

  if (refiner_ != nullptr && decision.fingerprinted) {
    const adapt::Observation obs =
        refiner_->observe(decision.fp, decision.version, response.label,
                          response.execution.makespan, ms.space);
    const bool reinstallIncumbent = obs.tracked && response.refined &&
                                    !response.explored && !response.cacheHit;
    if (obs.improved || reinstallIncumbent) {
      // Measured win: future lookups of this signature serve the refined
      // label (a stale-version key is dropped harmlessly). The reinstall
      // case covers exploiting a previously adopted win whose cache entry
      // was evicted: reinstall the *current* incumbent — not this
      // request's own label, which a concurrent probe's win may have
      // superseded. The full key is materialized here (win write-backs
      // are rare), stamped with the version the decision was made under.
      cache_->insert(decision.fp, fullKeyAt(ms, task, decision.version),
                     obs.bestLabel);
    }
  }

  ms.load.record(response.execution.makespan, response.execution.devices);
}

std::future<LaunchResponse> PartitionService::enqueue(MachineState& ms,
                                                      LaunchRequest request,
                                                      PreDecision carry) {
  TP_TRACE_INSTANT("serve.submit_miss", request.task.globalSize);
  common::ThreadPool& pool = ensurePool();

  PendingRequest pending;
  pending.enqueued = Clock::now();
  if (request.sizeLabel.empty()) {
    request.sizeLabel = "n=" + std::to_string(request.task.globalSize);
  }
  pending.request = std::move(request);
  pending.carry = carry;
  std::future<LaunchResponse> future = pending.promise.get_future();

  {
    common::MutexLock lock(ms.queueMutex);
    ms.queue.push_back(std::move(pending));
    // Wake one idle lane; busy lanes will drain the queue in batches.
    for (std::size_t l = 0; l < ms.laneBusy.size(); ++l) {
      if (!ms.laneBusy[l]) {
        ms.laneBusy[l] = 1;
        pool.submit([this, &ms, l] { workerLoop(ms, l); });
        break;
      }
    }
  }
  return future;
}

PartitionService::AdmitResult PartitionService::admitAndTryInline(
    LaunchRequest& request, LaunchResponse& response, PreDecision& carry,
    bool& inlineFault)
    TP_LOCK_FREE_AUDITED(
        "seq_cst (deliberate, A1-explicit) increment-then-check against the "
        "accepting_ gate: pairs with shutdown()'s store-then-drain so no "
        "request slips past a closing service uncounted; TSan: test_serve "
        "PartitionService.RetrainUnderLiveTrafficDoesNotDeadlock") {
  // Resolve + lifecycle-check before counting the request, mirroring the
  // queue-era semantics: unknown machines and post-shutdown submissions
  // throw and are never counted as submitted.
  MachineState& ms = state(request.machine);
  inFlight_.fetch_add(1, std::memory_order_seq_cst);
  if (!accepting_.load(std::memory_order_seq_cst)) {
    requestDone();
    throw Error("PartitionService: submit after shutdown");
  }
  submitted_.add();
  if (config_.breaker.enabled) {
    maybeEvaluateBreaker(ms);
    if (ms.shedding.load(std::memory_order_relaxed) != 0) {
      // Fast-fail: answer immediately without deciding or executing.
      // Sheds count as completed — every admitted request is answered
      // exactly once — and the response carries the shed flag so the
      // client can back off.
      shed_.add();
      completed_.add();
      response = LaunchResponse{};
      response.shed = true;
      response.modelVersion = cache_->version();
      requestDone();
      return AdmitResult{&ms, true};
    }
  }
  bool served = false;
  try {
    served = tryServeInline(ms, request, response, carry);
  } catch (...) {
    failed_.add();
    requestDone();
    inlineFault = true;
    throw;
  }
  if (served) requestDone();
  return AdmitResult{&ms, served};
}

std::future<LaunchResponse> PartitionService::submit(LaunchRequest request) {
  LaunchResponse response;
  PreDecision carry;
  bool inlineFault = false;
  AdmitResult admitted;
  try {
    admitted = admitAndTryInline(request, response, carry, inlineFault);
  } catch (...) {
    if (!inlineFault) throw;  // validation: unknown machine / shutdown
    // Inline execution faulted: deliver through the future, like a lane
    // worker fault would have been.
    std::promise<LaunchResponse> p;
    p.set_exception(std::current_exception());
    return p.get_future();
  }
  if (admitted.served) {
    std::promise<LaunchResponse> p;
    p.set_value(std::move(response));
    return p.get_future();
  }
  return enqueue(*admitted.ms, std::move(request), carry);
}

LaunchResponse PartitionService::call(LaunchRequest request) {
  LaunchResponse response;
  PreDecision carry;
  bool inlineFault = false;
  // Both validation and inline-execution faults propagate to the caller
  // directly on the synchronous path.
  const AdmitResult admitted =
      admitAndTryInline(request, response, carry, inlineFault);
  if (admitted.served) return response;
  return enqueue(*admitted.ms, std::move(request), carry).get();
}

void PartitionService::workerLoop(MachineState& ms, std::size_t lane) {
  while (true) {
    std::vector<PendingRequest> batch;
    {
      common::MutexLock lock(ms.queueMutex);
      if (ms.queue.empty()) {
        ms.laneBusy[lane] = 0;
        return;
      }
      const std::size_t take =
          std::min(std::max<std::size_t>(1, config_.maxBatch), ms.queue.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(ms.queue.front()));
        ms.queue.pop_front();
      }
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = maxBatch_.load(std::memory_order_relaxed);
    while (seen < batch.size() &&
           !maxBatch_.compare_exchange_weak(seen, batch.size(),
                                            std::memory_order_relaxed)) {
    }
    TP_TRACE_SPAN_ARG("serve.lane_batch", batch.size());
    for (auto& pending : batch) {
      process(ms, lane, std::move(pending));
    }
  }
}

std::size_t PartitionService::predictWithModel(
    const MachineState& ms, const runtime::Task& task) const {
  const auto x =
      features::combinedFeatureVector(task.features, task.launchInfo());
  common::SharedMutexLockShared lock(ms.modelMutex);
  const int label = ms.model->predict(x);
  TP_REQUIRE(label >= 0 && static_cast<std::size_t>(label) < ms.space.size(),
             "PartitionService: model for "
                 << ms.machine.name << " predicted label " << label
                 << " outside the space of " << ms.space.size());
  return static_cast<std::size_t>(label);
}

void PartitionService::process(MachineState& ms, std::size_t lane,
                               PendingRequest pending)
    TP_LOCK_FREE_AUDITED(
        "relaxed read of the feedbackBackfill_ hint flag; a stale value "
        "only delays backfill by one request, the recorder dedups; TSan: "
        "test_serve PartitionService.ConcurrentClientsGetConsistent"
        "Decisions") {
  LaunchResponse response;
  bool ok = false;
  try {
    const runtime::Task& task = pending.request.task;
    PreDecision d = pending.carry;
    if (!d.fingerprinted) {
      // First sighting of this (machine, program) pair anywhere: intern it
      // (cold path; kInvalid when the table is full, in which case this
      // launch serves uncached and unrefined — the model still answers).
      d.version = cache_->version();
      d.pairId = interner_->intern(ms.machine.name, task.programName,
                                   task.kernelName);
      if (d.pairId != common::PairInterner::kInvalid) {
        d.fp = launchFingerprint(d.pairId, task, config_.cacheRoundDigits);
        d.fingerprinted = true;
      }
    }
    if (!d.decided) {
      // Exactly one cache probe per request: a miss already recorded on
      // the submit path is not probed (or counted) again here.
      std::optional<std::size_t> hit;
      if (d.fingerprinted && !d.lookedUp) {
        TP_TRACE_SPAN("serve.cache_probe");
        hit = cache_->lookup(d.fp, d.version);
      }
      // Materialized once, shared by the cache insert (which copies) and
      // the RefineKey (which moves out of it).
      DecisionKey full;
      if (d.fingerprinted && (!hit.has_value() || refiner_ != nullptr)) {
        full = fullKeyAt(ms, task, d.version);
      }
      if (hit.has_value()) {
        d.label = *hit;
        d.cacheHit = true;
      } else {
        {
          TP_TRACE_SPAN("serve.model_inference");
          d.label = predictWithModel(ms, task);
        }
        if (d.fingerprinted) {
          cache_->insert(d.fp, full, d.label);
        }
      }
      if (refiner_ != nullptr && d.fingerprinted) {
        TP_TRACE_SPAN("serve.refiner_decide");
        // Miss-path refinement: the full key is in hand, so absent
        // entries are created here.
        adapt::RefineKey refineKey;
        refineKey.machine = std::move(full.machine);
        refineKey.program = std::move(full.program);
        refineKey.signature = std::move(full.features);
        const adapt::RefineDecision rd = refiner_->decide(
            d.fp, &refineKey, d.version, d.label, ms.space);
        d.explore = rd.explore;
        d.refined = rd.refined;
        if (rd.label != d.label || rd.explore) {
          d.cacheHit = false;
          d.label = rd.label;
        }
      }
      d.decided = true;
    }

    response.label = d.label;
    response.cacheHit = d.cacheHit;
    response.modelVersion = d.version;
    response.explored = d.explore;
    response.refined = d.refined;
    {
      TP_TRACE_SPAN_ARG("serve.execute", task.globalSize);
      finishDecided(ms, *ms.lanes[lane], task, response, d);
    }

    if (config_.recordFeedback &&
        (!response.cacheHit ||
         feedbackBackfill_.load(std::memory_order_relaxed))) {
      // Cache hits skip the recorder entirely: it deduplicates on the
      // launch signature, and a hit's signature was recorded when it
      // first missed — so the warm path never takes the feedback lock.
      // Exception: once remote wins were merged into the cache, hits may
      // be launches that never missed locally (see feedbackBackfill_).
      // Lane workers only run post-freeze, so the audited accessor is the
      // right read.
      feedbackPostFreeze()->record(task, ms.machine, ms.space,
                                   pending.request.sizeLabel);
    }
    ok = true;
  } catch (...) {
    failed_.add();
    pending.promise.set_exception(std::current_exception());
  }
  if (ok) {
    recordLatency(ms, secondsSince(pending.enqueued));
    completed_.add();
    pending.promise.set_value(std::move(response));
  }
  requestDone();
}

std::size_t PartitionService::predictLabel(const std::string& machine,
                                           const runtime::Task& task) const {
  return predictWithModel(state(machine), task);
}

PartitionService::RetrainResult PartitionService::retrain() {
  TP_TRACE_SPAN("serve.retrain");
  const auto retrainStart = Clock::now();
  RetrainResult result;
  FeedbackRecorder* feedback = nullptr;
  std::vector<MachineState*> states;
  {
    // feedback_ is written by addMachine() under machinesMutex_; read the
    // pointer under the same lock (it is never reset once set, so using
    // it after the unlock is safe).
    common::MutexLock lock(machinesMutex_);
    feedback = feedback_.get();
    states.reserve(machines_.size());
    for (const auto& [name, ms] : machines_) {
      (void)name;
      states.push_back(ms.get());
    }
  }
  TP_REQUIRE(feedback != nullptr,
             "PartitionService: retrain before any machine was added");
  const runtime::FeatureDatabase db = [&] {
    TP_TRACE_SPAN("serve.retrain.snapshot");
    return feedback->snapshot();
  }();
  result.recordsUsed = db.size();
  for (MachineState* ms : states) {
    if (db.forMachine(ms->machine.name).empty()) continue;
    TP_TRACE_SPAN_ARG("serve.retrain.fit", result.recordsUsed);
    // Train outside the model lock: serving continues on the old model
    // until the swap below.
    auto model = runtime::trainDeploymentModel(
        db, ms->machine.name, config_.retrainSpec,
        runtime::FeatureSet::Combined, config_.retrainSeed);
    {
      common::SharedMutexLock lock(ms->modelMutex);
      ms->model = std::move(model);
    }
    ++result.machinesRetrained;
  }
  TP_TRACE_SPAN("serve.retrain.sweep");
  // New generation: every cached decision of the old models is stale.
  // (Swap-then-bump: a prediction racing the swap is cached under the old
  // version and swept here; the reverse order would let old-model labels
  // survive into the new generation.)
  result.modelVersion = cache_->bumpVersion();
  // Version plumbing: stamp every machine with the generation its model
  // now serves, so stats and the refiner's decay agree on "current".
  for (MachineState* ms : states) {
    common::SharedMutexLock lock(ms->modelMutex);
    ms->modelVersion = result.modelVersion;
  }
  retrains_.fetch_add(1, std::memory_order_relaxed);
  lastRetrainSeconds_.store(secondsSince(retrainStart),
                            std::memory_order_relaxed);
  return result;
}

std::uint64_t PartitionService::modelVersion() const noexcept {
  return cache_->version();
}

std::vector<PartitionService::DeployedModel> PartitionService::deployedModels()
    const {
  std::vector<DeployedModel> out;
  common::MutexLock lock(machinesMutex_);
  out.reserve(machines_.size());
  for (const auto& [name, ms] : machines_) {
    common::SharedMutexLockShared modelLock(ms->modelMutex);
    out.push_back(DeployedModel{name, ms->model});
  }
  return out;
}

std::vector<adapt::WinRecord> PartitionService::exportRefinedWins(
    bool refinedOnly) const {
  if (refiner_ == nullptr) return {};
  return refiner_->exportWins(refinedOnly);
}

adapt::MergeResult PartitionService::mergeRemoteWins(
    const std::vector<adapt::WinRecord>& wins) {
  TP_TRACE_SPAN_ARG("serve.merge_remote_wins", wins.size());
  adapt::MergeResult result;
  std::size_t spaceSize = 0;
  {
    // Every machine spans the same space (enforced by addMachine), so
    // any registered one bounds the valid labels.
    common::MutexLock lock(machinesMutex_);
    if (!machines_.empty()) spaceSize = machines_.begin()->second->space.size();
  }
  if (refiner_ == nullptr || spaceSize == 0) {
    result.dropped = wins.size();
    return result;
  }
  // Remote state is wire-decoded and not ours to trust: a label outside
  // the partitioning space would be elected, cached, and then throw on
  // every warm request for its key. Drop such records at the edge.
  std::vector<adapt::WinRecord> valid;
  valid.reserve(wins.size());
  for (const adapt::WinRecord& rec : wins) {
    const bool labelsOk =
        rec.baseLabel < spaceSize && rec.incumbentLabel < spaceSize &&
        std::all_of(rec.arms.begin(), rec.arms.end(),
                    [&](const adapt::WinArm& arm) {
                      return arm.label < spaceSize;
                    });
    if (labelsOk) {
      valid.push_back(rec);
    } else {
      ++result.dropped;
    }
  }
  const std::uint64_t version = cache_->version();
  // From here on, warm hits may serve launches this service never
  // measured; make the hit paths backfill feedback (see the member).
  if (!valid.empty()) {
    feedbackBackfill_.store(true, std::memory_order_relaxed);
  }
  // The refiner addresses records through the service fingerprinter (its
  // constructor injection), so merged keys land exactly where live
  // traffic for the same launches does.
  const adapt::MergeResult merged = refiner_->mergeWins(valid, version);
  result.adopted = merged.adopted;
  result.updated = merged.updated;
  result.stale = merged.stale;
  result.dropped += merged.dropped;
  // Write adopted incumbents through into the decision cache, so warm
  // lookups serve the merged win immediately. The incumbent is re-read
  // from the refiner (not taken from the record): a concurrent local
  // observation or a better peer record may have superseded it.
  for (const adapt::WinRecord& rec : valid) {
    if (rec.modelVersion != version) continue;
    const std::uint32_t pairId =
        interner_->intern(rec.key.machine, rec.key.program);
    if (pairId == common::PairInterner::kInvalid) continue;
    const common::Fingerprint fp =
        launchFingerprint(pairId, rec.key.signature);
    const auto inc = refiner_->incumbent(fp, version);
    if (!inc.tracked) continue;
    DecisionKey key;
    key.machine = rec.key.machine;
    key.program = rec.key.program;
    key.modelVersion = version;
    key.features = rec.key.signature;  // already quantized by the sender
    cache_->insert(fp, key, inc.label);
  }
  return result;
}

adapt::Refiner::Incumbent PartitionService::refinedIncumbent(
    const adapt::RefineKey& key, std::uint64_t version) const {
  if (refiner_ == nullptr) return {};
  return refiner_->incumbent(key, version);
}

void PartitionService::installModels(const std::vector<ModelUpdate>& updates,
                                     std::uint64_t version) {
  TP_REQUIRE(version >= cache_->version(),
             "PartitionService: installModels would move the generation "
             "backward (" << version << " < " << cache_->version() << ")");
  std::vector<MachineState*> states;
  {
    common::MutexLock lock(machinesMutex_);
    for (const ModelUpdate& update : updates) {
      TP_REQUIRE(update.model != nullptr,
                 "PartitionService: null model for machine "
                     << update.machine);
      const auto it = machines_.find(update.machine);
      TP_REQUIRE(it != machines_.end(),
                 "PartitionService: installModels for unknown machine '"
                     << update.machine << "'");
      common::SharedMutexLock modelLock(it->second->modelMutex);
      it->second->model = update.model;
    }
    states.reserve(machines_.size());
    for (const auto& [name, ms] : machines_) {
      (void)name;
      states.push_back(ms.get());
    }
  }
  // Swap-then-advance, like retrain(): decisions racing the swap are
  // cached under the old generation and swept by the advance.
  const std::uint64_t before = cache_->version();
  const std::uint64_t current = cache_->advanceVersion(version);
  if (version == before) {
    // Same-generation install (snapshot warm-start at the current
    // generation, or a second retrain coordinator racing to the same
    // number): advanceVersion was a no-op and swept nothing, but the
    // previous models' labels must not keep serving as cache hits under
    // a generation they no longer belong to. Drop everything.
    cache_->clear();
  }
  for (MachineState* ms : states) {
    common::SharedMutexLock lock(ms->modelMutex);
    ms->modelVersion = current;
  }
}

runtime::FeatureDatabase PartitionService::trafficSnapshot() const {
  FeedbackRecorder* feedback = nullptr;
  {
    // Racing a concurrent addMachine(): the recorder pointer is guarded
    // by machinesMutex_ until the freeze, so read it under the lock (the
    // pointee is internally synchronized and never destroyed before us).
    common::MutexLock lock(machinesMutex_);
    feedback = feedback_.get();
  }
  TP_REQUIRE(feedback != nullptr,
             "PartitionService: no feedback schema before addMachine()");
  return feedback->snapshot();
}

void PartitionService::drain()
    TP_LOCK_FREE_AUDITED(
        "seq_cst (deliberate, A1-explicit) wait loop on the in-flight "
        "latch, pairing with requestDone()'s decrement+notify; TSan: "
        "test_serve PartitionService.RetrainUnderLiveTrafficDoesNotDeadlock") {
  for (;;) {
    const std::uint64_t v = inFlight_.load(std::memory_order_seq_cst);
    if (v == 0) return;
    inFlight_.wait(v, std::memory_order_seq_cst);
  }
}

void PartitionService::shutdown() {
  accepting_.store(false, std::memory_order_seq_cst);
  drain();
  // Wait for lane workers to finish their queue-empty bookkeeping before
  // any member they touch can be destroyed.
  common::ThreadPool* pool = nullptr;
  {
    common::MutexLock lock(machinesMutex_);
    pool = pool_.get();
  }
  if (pool != nullptr) pool->waitIdle();
}

ServiceStats PartitionService::stats() const {
  ServiceStats s;
  s.requestsSubmitted = submitted_.total();
  s.requestsCompleted = completed_.total();
  s.requestsFailed = failed_.total();
  s.batches = batches_.load(std::memory_order_relaxed);
  s.maxBatch = maxBatch_.load(std::memory_order_relaxed);
  s.requestsInline = inlineHits_.total();
  s.inlineLaneExhausted = inlineLaneExhausted_.total();
  s.requestsShed = shed_.total();
  s.breakerTrips = breakerTrips_.load(std::memory_order_relaxed);
  s.cache = cache_->counters();
  s.cacheHitRate = s.cache.hitRate();
  s.modelVersion = cache_->version();
  s.retrains = retrains_.load(std::memory_order_relaxed);
  if (refiner_ != nullptr) {
    s.refiner = refiner_->counters();
    s.refinedKeys = refiner_->trackedKeys();
  }
  s.latency = latency_.summary();

  // feedback_ is guarded by machinesMutex_ during registration — reading
  // it outside the lock here raced a concurrent first addMachine() (the
  // annotation pass surfaced this; the regression test hammers stats()
  // against addMachine under TSan).
  common::MutexLock lock(machinesMutex_);
  s.feedbackRecords = feedback_ != nullptr ? feedback_->size() : 0;
  s.internedPairs = interner_->size();
  s.internRejections = interner_->fullRejections();
  for (const auto& [name, ms] : machines_) {
    (void)name;
    MachineStats m;
    m.machine = ms->machine.name;
    {
      common::SharedMutexLockShared modelLock(ms->modelMutex);
      m.modelVersion = ms->modelVersion;
    }
    const MachineLoadStats::Snapshot load = ms->load.snapshot();
    m.requests = load.requests;
    m.makespanSeconds = load.makespanSum;
    for (std::size_t d = 0; d < load.deviceBusySeconds.size(); ++d) {
      DeviceUtilization util;
      util.device = ms->machine.devices[d].name;
      util.busySeconds = load.deviceBusySeconds[d];
      util.utilization =
          load.makespanSum > 0.0 ? util.busySeconds / load.makespanSum : 0.0;
      m.devices.push_back(std::move(util));
    }
    s.machines.push_back(std::move(m));
  }
  return s;
}

const runtime::PartitioningSpace& PartitionService::space(
    const std::string& machine) const {
  return state(machine).space;
}

obs::SloTracker::Report PartitionService::sloReport(
    const std::string& machine) const {
  const MachineState& ms = state(machine);
  return ms.slo != nullptr ? ms.slo->report() : obs::SloTracker::Report{};
}

void PartitionService::maybeEvaluateBreaker(MachineState& ms)
    TP_LOCK_FREE_AUDITED(
        "relaxed admission-tick bump; an occasionally duplicated or "
        "skipped evaluation only shifts WHEN the breaker re-judges the "
        "window, never what it judges; TSan: test_serve "
        "PartitionService.BreakerShedsUnderOverloadAndRecovers") {
  const std::uint64_t tick = ms.admitTick.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t every = std::max<std::uint64_t>(1, config_.breaker.evalEvery);
  if (tick % every != 0) return;
  evaluateBreaker(ms);
}

void PartitionService::evaluateBreaker(MachineState& ms)
    TP_LOCK_FREE_AUDITED(
        "single-winner evaluation: the ClaimGuard CAS (acq_rel) hands the "
        "streak/prev words from winner to winner; losers return without "
        "touching them; the shedding flag itself is a relaxed on/off word "
        "read by the admission path; TSan: test_serve "
        "PartitionService.BreakerShedsUnderOverloadAndRecovers") {
  common::ClaimGuard claim(ms.evalBusy);
  if (!claim.claimed()) return;  // another admission is already judging

  bool hot = false;
  double value = 0.0;
  double threshold = 0.0;
  if (ms.slo != nullptr) {
    const obs::SloTracker::Report report = ms.slo->report();
    const double burn = std::max(report.burnRateP99, report.burnRateP999);
    if (report.breached && burn > config_.breaker.burnRateCeiling) {
      hot = true;
      value = burn;
      threshold = config_.breaker.burnRateCeiling;
    }
  }
  // Lane-exhaustion arm: bounce rate since the previous evaluation.
  // Service-wide counters (they are striped per thread, not per machine);
  // with one overloaded machine that is exactly the victim signal.
  const std::uint64_t submitted = submitted_.total();
  const std::uint64_t exhausted = inlineLaneExhausted_.total();
  const std::uint64_t dSubmitted = submitted - ms.prevSubmitted;
  const std::uint64_t dExhausted = exhausted - ms.prevExhausted;
  ms.prevSubmitted = submitted;
  ms.prevExhausted = exhausted;
  if (!hot && dSubmitted >= config_.breaker.minSamplesPerEval) {
    const double rate =
        static_cast<double>(dExhausted) / static_cast<double>(dSubmitted);
    if (rate > config_.breaker.laneExhaustionCeiling) {
      hot = true;
      value = rate;
      threshold = config_.breaker.laneExhaustionCeiling;
    }
  }

  if (hot) {
    ms.coolStreak = 0;
    ++ms.hotStreak;
    if (ms.hotStreak >= config_.breaker.tripAfter &&
        ms.shedding.load(std::memory_order_relaxed) == 0) {
      ms.shedding.store(1, std::memory_order_relaxed);
      breakerTrips_.fetch_add(1, std::memory_order_relaxed);
      TP_WARN("admission breaker OPEN on " << ms.machine.name << ": "
                                           << value << " > " << threshold
                                           << " — shedding load");
    }
  } else {
    ms.hotStreak = 0;
    ++ms.coolStreak;
    if (ms.coolStreak >= config_.breaker.clearAfter &&
        ms.shedding.load(std::memory_order_relaxed) != 0) {
      ms.shedding.store(0, std::memory_order_relaxed);
      TP_INFO("admission breaker closed on " << ms.machine.name
                                             << ": window recovered");
    }
  }
}

void PartitionService::evaluateBreakerNow(const std::string& machine) {
  if (!config_.breaker.enabled) return;
  evaluateBreaker(state(machine));
}

bool PartitionService::breakerOpen(const std::string& machine) const
    TP_LOCK_FREE_AUDITED(
        "one relaxed load of the on/off shedding word; TSan: test_serve "
        "PartitionService.BreakerShedsUnderOverloadAndRecovers") {
  return state(machine).shedding.load(std::memory_order_relaxed) != 0;
}

void PartitionService::registerHealthRules(obs::HealthMonitor& monitor,
                                           const HealthRulesConfig& rules)
    TP_LOCK_FREE_AUDITED(
        "registers rule lambdas reading thread-safe snapshot surfaces "
        "(SLO reports, cache counter snapshots, striped-counter totals, "
        "one relaxed load of the last-retrain word); the monitor runs "
        "them serially under its own mutex; TSan: test_health "
        "HealthMonitor.BreachWhileDrainStaysConsistent") {
  const std::string p = config_.metricsPrefix;

  // ONE aggregated latency rule, not one per machine: a fleet-wide
  // latency incident should page once. The firing carries the worst
  // burn rate and names its machine.
  {
    obs::DetectorRule rule;
    rule.name = p + "latency_slo";
    rule.severity = obs::Severity::Critical;
    rule.triggerAfter = rules.triggerAfter;
    rule.clearAfter = rules.clearAfter;
    rule.evaluate = [this]() -> std::optional<obs::Firing> {
      double worstBurn = 0.0;
      std::string worstMachine;
      common::MutexLock lock(machinesMutex_);
      for (const auto& [name, ms] : machines_) {
        if (ms->slo == nullptr) continue;
        const obs::SloTracker::Report r = ms->slo->report();
        if (!r.breached) continue;
        const double burn = std::max(r.burnRateP99, r.burnRateP999);
        if (burn >= worstBurn) {
          worstBurn = burn;
          worstMachine = name;
        }
      }
      if (worstMachine.empty()) return std::nullopt;
      return obs::Firing{worstBurn, 1.0,
                         "latency SLO breached on " + worstMachine +
                             ": error budget burning at " +
                             std::to_string(worstBurn) + "x"};
    };
    monitor.addRule(std::move(rule));
  }

  {
    obs::DetectorRule rule;
    rule.name = p + "cache_hit_collapse";
    rule.triggerAfter = rules.triggerAfter;
    rule.clearAfter = rules.clearAfter;
    rule.evaluate = [this, rules, prevLookups = std::uint64_t{0},
                     prevHits =
                         std::uint64_t{0}]() mutable -> std::optional<obs::Firing> {
      const CacheCounters c = cache_->counters();
      const std::uint64_t dLookups = c.lookups - prevLookups;
      const std::uint64_t dHits = c.hits - prevHits;
      prevLookups = c.lookups;
      prevHits = c.hits;
      if (dLookups < rules.minLookupsPerEval) return std::nullopt;
      const double rate = static_cast<double>(dHits) / dLookups;
      if (rate >= rules.hitRateFloor) return std::nullopt;
      return obs::Firing{rate, rules.hitRateFloor,
                         "cache hit rate collapsed to " +
                             std::to_string(rate) + " over the last " +
                             std::to_string(dLookups) + " lookups"};
    };
    monitor.addRule(std::move(rule));
  }

  {
    obs::DetectorRule rule;
    rule.name = p + "eviction_storm";
    rule.triggerAfter = rules.triggerAfter;
    rule.clearAfter = rules.clearAfter;
    rule.evaluate = [this, rules, prevLookups = std::uint64_t{0},
                     prevEvictions =
                         std::uint64_t{0}]() mutable -> std::optional<obs::Firing> {
      const CacheCounters c = cache_->counters();
      const std::uint64_t dLookups = c.lookups - prevLookups;
      const std::uint64_t dEvictions = c.evictions - prevEvictions;
      prevLookups = c.lookups;
      prevEvictions = c.evictions;
      if (dLookups < rules.minLookupsPerEval) return std::nullopt;
      const double rate = static_cast<double>(dEvictions) / dLookups;
      if (rate <= rules.evictionStormCeiling) return std::nullopt;
      return obs::Firing{rate, rules.evictionStormCeiling,
                         "cache evicting at " + std::to_string(rate) +
                             " per lookup (undersized for the working set)"};
    };
    monitor.addRule(std::move(rule));
  }

  if (refiner_ != nullptr) {
    obs::DetectorRule rule;
    rule.name = p + "probe_storm";
    rule.triggerAfter = rules.triggerAfter;
    rule.clearAfter = rules.clearAfter;
    rule.evaluate = [this, rules, prevDecisions = std::uint64_t{0},
                     prevExplorations =
                         std::uint64_t{0}]() mutable -> std::optional<obs::Firing> {
      const adapt::RefinerCounters c = refiner_->counters();
      const std::uint64_t dDecisions = c.decisions - prevDecisions;
      const std::uint64_t dExplorations = c.explorations - prevExplorations;
      prevDecisions = c.decisions;
      prevExplorations = c.explorations;
      if (dDecisions < rules.minLookupsPerEval) return std::nullopt;
      const double rate = static_cast<double>(dExplorations) / dDecisions;
      if (rate <= rules.probeStormCeiling) return std::nullopt;
      return obs::Firing{rate, rules.probeStormCeiling,
                         "refiner probing on " + std::to_string(rate) +
                             " of decisions (exploration never converging)"};
    };
    monitor.addRule(std::move(rule));
  }

  {
    obs::DetectorRule rule;
    rule.name = p + "lane_exhaustion";
    rule.triggerAfter = rules.triggerAfter;
    rule.clearAfter = rules.clearAfter;
    rule.evaluate = [this, rules, prevSubmitted = std::uint64_t{0},
                     prevExhausted =
                         std::uint64_t{0}]() mutable -> std::optional<obs::Firing> {
      const std::uint64_t submitted = submitted_.total();
      const std::uint64_t exhausted = inlineLaneExhausted_.total();
      const std::uint64_t dSubmitted = submitted - prevSubmitted;
      const std::uint64_t dExhausted = exhausted - prevExhausted;
      prevSubmitted = submitted;
      prevExhausted = exhausted;
      if (dSubmitted < rules.minSubmitsPerEval) return std::nullopt;
      const double rate = static_cast<double>(dExhausted) / dSubmitted;
      if (rate <= rules.laneExhaustionCeiling) return std::nullopt;
      return obs::Firing{rate, rules.laneExhaustionCeiling,
                         "inline lanes exhausted on " + std::to_string(rate) +
                             " of submissions (warm hits convoying on the "
                             "batching queue)"};
    };
    monitor.addRule(std::move(rule));
  }

  {
    obs::DetectorRule rule;
    rule.name = p + "retrain_overrun";
    rule.triggerAfter = rules.triggerAfter;
    rule.clearAfter = rules.clearAfter;
    rule.evaluate = [this, rules]() -> std::optional<obs::Firing> {
      const double last = lastRetrainSeconds_.load(std::memory_order_relaxed);
      if (last <= rules.retrainOverrunSeconds) return std::nullopt;
      return obs::Firing{last, rules.retrainOverrunSeconds,
                         "last retrain took " + std::to_string(last) +
                             "s (model refresh falling behind traffic)"};
    };
    monitor.addRule(std::move(rule));
  }

  if (config_.breaker.enabled) {
    // load_shed fires while the service sheds (new sheds since the last
    // evaluation OR a breaker still open), clears once shedding stopped
    // and every breaker closed — so one overload incident produces one
    // deduped breach/clear pair, not one per shed request.
    obs::DetectorRule rule;
    rule.name = p + "load_shed";
    rule.severity = obs::Severity::Critical;
    rule.triggerAfter = 1;  // the breaker's own hysteresis already gates
    rule.clearAfter = rules.clearAfter;
    rule.evaluate = [this, prevShed = std::uint64_t{0}]() mutable
        -> std::optional<obs::Firing> {
      const std::uint64_t shed = shed_.total();
      const std::uint64_t dShed = shed - prevShed;
      prevShed = shed;
      bool anyOpen = false;
      {
        common::MutexLock lock(machinesMutex_);
        for (const auto& [name, ms] : machines_) {
          (void)name;
          if (ms->shedding.load(std::memory_order_relaxed) != 0) {
            anyOpen = true;
            break;
          }
        }
      }
      if (dShed == 0 && !anyOpen) return std::nullopt;
      return obs::Firing{static_cast<double>(dShed), 0.0,
                         "admission breaker shedding load (" +
                             std::to_string(dShed) +
                             " requests since the last evaluation)"};
    };
    monitor.addRule(std::move(rule));
  }
}

void PartitionService::saveTraffic(const std::string& path) const {
  FeedbackRecorder* feedback = nullptr;
  {
    common::MutexLock lock(machinesMutex_);
    feedback = feedback_.get();
  }
  TP_REQUIRE(feedback != nullptr, "PartitionService: no traffic recorded yet");
  feedback->saveCsv(path);
}

}  // namespace tp::serve
