#pragma once

// PartitionService — the trained predictor as a long-lived, thread-safe
// serving component.
//
// Clients on any thread submit() LaunchRequests (or call() synchronously)
// and the service answers "how should this task be split?" and executes
// the split on the target machine's simulated devices. Internals:
//
//   - a lock-free fingerprinted decision cache (serve/cache.hpp): the
//     (machine, program) pair is interned once (common::PairInterner) and
//     folded with the quantized launch signature into a 128-bit
//     fingerprint, so the warm path never builds a key string or
//     signature vector;
//   - inline hit serving: a warm request that hits the cache (and, with
//     refinement on, is not selected for a probe) is decided AND executed
//     on the caller's thread using a per-machine pool of atomically
//     claimed inline lanes — it never touches the batching queue, a
//     worker thread, or any mutex. The decision fast path (fingerprint,
//     cache lookup, stats) is allocation-free; the response payload
//     (partitioning copy, per-device execution report) still allocates,
//     as does submit()'s future (call() avoids it);
//   - a per-machine batching request queue for misses and refiner probes:
//     concurrently submitted requests coalesce and are drained in batches
//     (up to maxBatch per worker wakeup) by lane workers running on a
//     common::ThreadPool. Each lane owns a private vcl::Context +
//     runtime::Scheduler, so one process serves multi-machine fleets
//     (mc1 + mc2) concurrently while per-lane simulated clocks stay
//     isolated;
//   - an online feedback recorder (serve/feedback.hpp) that measures each
//     distinct executed launch into a FeatureDatabase; cache hits skip it
//     (the recorder deduplicates on the launch signature, and a hit's
//     signature was recorded when it first missed), so the warm path
//     takes no feedback lock — except after mergeRemoteWins() wrote
//     remote incumbents through into the cache, when hits backfill
//     through the recorder's dedup (see feedbackBackfill_).
//     retrain() refreshes every machine's model
//     from the accumulated traffic and bumps the cache version,
//     invalidating all cached decisions;
//   - an optional online refiner (adapt/refiner.hpp, config.refine): a
//     bounded local search per launch signature, addressed by the same
//     fingerprint the cache path computed. Probe decisions enqueue for
//     lane workers (carrying their decision, so it is made exactly once);
//     exploit decisions execute inline. With refinement on, the hit path
//     does take the refiner's shard mutex;
//   - striped stats (serve/stats.hpp): per-thread request counters,
//     machine load accumulators and latency reservoirs, merged on
//     stats() read — no statsMutex anywhere on the serving path.
//
// Machine registration freezes at the first submit(): after that the
// machine map is read without locking. Shutdown drains the queue: every
// accepted request is answered before the destructor returns;
// submissions after shutdown() throw tp::Error.

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "adapt/refiner.hpp"
#include "common/annotations.hpp"
#include "common/intern.hpp"
#include "common/striped.hpp"
#include "common/thread_pool.hpp"
#include "ml/classifier.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "ocl/queue.hpp"
#include "runtime/partitioning.hpp"
#include "serve/cache.hpp"
#include "serve/feedback.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"
#include "sim/machine.hpp"

namespace tp::serve {

/// Per-machine admission breaker: when the machine's SLO window burns
/// error budget past the ceiling (or inline lanes exhaust faster than
/// the ceiling), new requests for it are shed — answered immediately
/// with LaunchResponse::shed set, nothing decided or executed — until
/// the window recovers. Evaluation is amortized (every evalEvery-th
/// admission, single winner via CAS claim) so the warm path pays one
/// relaxed counter bump and one relaxed flag load. Trip and clear both
/// take consecutive agreeing evaluations (hysteresis mirroring
/// obs::HealthMonitor), so one bad window cannot flap the breaker.
struct BreakerConfig {
  bool enabled = false;
  /// Trip when the SLO report is breached AND max(burnRateP99,
  /// burnRateP999) exceeds this.
  double burnRateCeiling = 2.0;
  /// Trip when inline-lane-exhaustion bounces per submitted request
  /// (delta since the previous evaluation) exceed this.
  double laneExhaustionCeiling = 0.5;
  std::size_t tripAfter = 2;   ///< consecutive hot evaluations to open
  std::size_t clearAfter = 3;  ///< consecutive cool evaluations to close
  /// Evaluate once per this many admissions to the machine.
  std::uint64_t evalEvery = 256;
  /// Lane-exhaustion judgment needs at least this many submissions since
  /// the previous evaluation (the SLO arm judges regardless — its own
  /// minSamples gate lives in the tracker).
  std::uint64_t minSamplesPerEval = 64;
};

struct ServiceConfig {
  int divisions = 10;  ///< partitioning-space step granularity (10 = 10%)
  std::size_t cacheCapacity = 1024;  ///< rounded up to a power of two
  int cacheRoundDigits = 6;  ///< significant digits in cache keys
  /// Distinct (machine, program) pairs the intern table can hold; pairs
  /// beyond it serve uncached/unrefined (the model path still answers).
  std::size_t internCapacity = 4096;
  std::size_t maxBatch = 16;  ///< max requests drained per worker wakeup
  std::size_t lanesPerMachine = 2;  ///< concurrent scheduler lanes (queue path)
  /// Per-machine inline execution lanes for cache-hit serving on caller
  /// threads; 0 = auto (2x hardware concurrency in [16, 64]). Lane
  /// contexts are built lazily on first claim. When every inline lane is
  /// busy the hit falls back to the batching queue.
  std::size_t inlineLanes = 0;
  std::size_t workerThreads = 0;  ///< 0 = one thread per lane
  std::size_t latencyWindow = 8192;  ///< samples kept per latency stripe
  bool recordFeedback = true;  ///< measure executed launches for retrain()
  std::string retrainSpec = "forest:32";  ///< ml::makeClassifier spec
  std::uint64_t retrainSeed = 42;
  vcl::ExecMode execMode = vcl::ExecMode::TimeOnly;
  /// Online partition refinement (adapt::Refiner). Off by default: with
  /// refinement on, served labels may deliberately deviate from the pure
  /// model prediction on explored/refined traffic.
  bool refine = false;
  adapt::RefinerConfig refiner;
  /// Optional metrics registry. When set, the service registers readout
  /// callbacks for its existing striped counters, cache/refiner/interner
  /// counters and latency summary under `metricsPrefix` — the service
  /// counters stay the single source of truth; the registry samples them
  /// at exposition time (no double accounting). It also records request
  /// latency into an owned `<prefix>latency_ns` histogram. Everything
  /// under the prefix is removed in the destructor, so the registry must
  /// outlive the service.
  obs::Registry* metrics = nullptr;
  /// Namespace for this service's registry entries. Fleets override it
  /// per replica (e.g. "replica0.serve.") to keep entries distinct.
  std::string metricsPrefix = "serve.";
  /// Per-machine latency SLO tracking (obs::SloTracker). Off unless the
  /// config carries a target (slo.enabled()); when on, every served
  /// request also records into its machine's sliding-window tracker, and
  /// sloReport()/registerHealthRules() judge the window against the
  /// targets. With metrics set, per-machine burn-rate gauges register
  /// under `<metricsPrefix>slo.<machine>.*`.
  obs::SloConfig slo;
  /// SLO-driven admission breaker (load shedding). Off by default; the
  /// burn-rate arm additionally needs slo.enabled().
  BreakerConfig breaker;
};

/// Thresholds for the stock detector rules registerHealthRules()
/// installs. Rate rules judge deltas between consecutive evaluations —
/// recent behaviour, not lifetime averages — so each keeps its own
/// previous-counter state inside the rule closure (the monitor runs
/// rules serially under its mutex; see obs/health.hpp).
struct HealthRulesConfig {
  std::size_t triggerAfter = 2;  ///< consecutive firings before the event
  std::size_t clearAfter = 2;    ///< consecutive quiets before recovery
  /// cache_hit_collapse: hit rate since the last evaluation below this
  /// floor (with at least minLookupsPerEval lookups) fires.
  double hitRateFloor = 0.5;
  std::uint64_t minLookupsPerEval = 256;
  /// eviction_storm: evictions per lookup since the last evaluation.
  double evictionStormCeiling = 0.25;
  /// probe_storm (refinement only): exploration probes per refiner
  /// decision since the last evaluation.
  double probeStormCeiling = 0.5;
  /// lane_exhaustion: all-inline-lanes-busy bounces per submitted
  /// request since the last evaluation.
  double laneExhaustionCeiling = 0.25;
  std::uint64_t minSubmitsPerEval = 256;
  /// retrain_overrun: wall seconds of the most recent retrain() pass
  /// (stays firing until a faster retrain lands).
  double retrainOverrunSeconds = 30.0;
};

class PartitionService {
public:
  explicit PartitionService(ServiceConfig config = {});
  ~PartitionService();  ///< shutdown(): drains before destruction

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Register a machine with its deployed model. All machines must be
  /// registered before the first submit() (the worker pool is sized to
  /// the registered lanes and the machine map freezes), and must share
  /// one partitioning-space size (same device count) so feedback records
  /// share a schema.
  void addMachine(const sim::MachineConfig& machine,
                  std::shared_ptr<const ml::Classifier> model);
  /// Convenience: load a model saved with ml::Classifier::saveFile().
  void addMachine(const sim::MachineConfig& machine,
                  const std::string& modelPath);

  /// Enqueue a request; the future resolves when it has been decided and
  /// executed (or faults with tp::Error). Warm hits are served inline on
  /// the calling thread and return an already-resolved future.
  std::future<LaunchResponse> submit(LaunchRequest request);

  /// Synchronous entry point. For warm hits this is the allocation-light
  /// fast path (no future, no queue); misses fall back to submit().get().
  LaunchResponse call(LaunchRequest request);

  /// The unbatched, uncached reference path: extract features and ask the
  /// machine's current model directly. Served decisions always equal this
  /// (for the same model version).
  std::size_t predictLabel(const std::string& machine,
                           const runtime::Task& task) const;

  struct RetrainResult {
    std::uint64_t modelVersion = 0;  ///< cache generation after the bump
    std::size_t machinesRetrained = 0;
    std::size_t recordsUsed = 0;  ///< feedback records in the snapshot
  };
  /// Refresh every machine's model from the recorded traffic (machines
  /// without records keep their model), then invalidate the cache.
  RetrainResult retrain();

  // ---- fleet surface ------------------------------------------------------
  // Hooks for tp::fleet: replicated serving with gossiped refiner wins,
  // model fan-out and snapshot persistence. Each is safe to call
  // concurrently with traffic.

  /// Current cache/model generation.
  std::uint64_t modelVersion() const noexcept;

  struct DeployedModel {
    std::string machine;
    std::shared_ptr<const ml::Classifier> model;
  };
  /// The deployed model of every registered machine (name order), for
  /// snapshotting. The shared_ptrs alias the live models.
  std::vector<DeployedModel> deployedModels() const;

  /// Export the refiner's transferable state (empty when refinement is
  /// off). `refinedOnly` selects adopted wins (gossip) vs every tracked
  /// key (snapshots).
  std::vector<adapt::WinRecord> exportRefinedWins(bool refinedOnly = true) const;

  /// Merge win records from a peer replica (or a snapshot): stale-version
  /// records are rejected, accepted evidence merges into the refiner, and
  /// each adopted incumbent is written through into the decision cache so
  /// warm traffic serves it without a probe. With refinement off all
  /// records count as dropped.
  adapt::MergeResult mergeRemoteWins(const std::vector<adapt::WinRecord>& wins);

  /// The refiner's incumbent for a key at a model generation, addressed
  /// under the service's fingerprint scheme (test/introspection surface;
  /// untracked when refinement is off).
  adapt::Refiner::Incumbent refinedIncumbent(const adapt::RefineKey& key,
                                             std::uint64_t version) const;

  struct ModelUpdate {
    std::string machine;
    std::shared_ptr<const ml::Classifier> model;
  };
  /// Install externally trained models as generation `version` and sweep
  /// cached decisions of older generations. `version` must not be behind
  /// the current generation; installing AT the current generation drops
  /// every cached decision instead (the previous models' labels must not
  /// survive the swap as hits). Machines absent from `updates` keep
  /// their model but are stamped with the new generation (it is
  /// fleet-global). Used by fleet retrain fan-out and snapshot
  /// warm-start.
  void installModels(const std::vector<ModelUpdate>& updates,
                     std::uint64_t version);

  /// Consistent copy of the recorded feedback traffic; throws tp::Error
  /// before the first addMachine() (no schema yet).
  runtime::FeatureDatabase trafficSnapshot() const;

  /// Block until every accepted request has been answered.
  void drain();
  /// Stop accepting, then drain. Idempotent.
  void shutdown();

  ServiceStats stats() const;

  /// The machine's sliding-window SLO judgment (quantiles, burn rates,
  /// breached flag); a default-constructed Report when SLO tracking is
  /// disabled. Safe concurrently with traffic.
  obs::SloTracker::Report sloReport(const std::string& machine) const;

  /// Run one admission-breaker evaluation for `machine` right now
  /// (deterministic test hook; production evaluations ride every
  /// breaker.evalEvery-th admission). No-op unless config.breaker.enabled.
  void evaluateBreakerNow(const std::string& machine);
  /// Whether `machine`'s admission breaker is currently open (shedding).
  bool breakerOpen(const std::string& machine) const;

  /// Install this service's stock detector rules into `monitor`, named
  /// under metricsPrefix (so removeRulesByPrefix(metricsPrefix) unhooks
  /// them): latency_slo (Critical, aggregated over machines — a
  /// fleet-wide latency incident pages once, the firing names the worst
  /// burner), cache_hit_collapse, eviction_storm, probe_storm (with
  /// refinement on), lane_exhaustion and retrain_overrun. The closures
  /// capture `this`: stop the monitor (or remove the rules) before this
  /// service is destroyed.
  void registerHealthRules(obs::HealthMonitor& monitor,
                           const HealthRulesConfig& rules = {});

  const runtime::PartitioningSpace& space(const std::string& machine) const;
  const DecisionCache& cache() const noexcept { return *cache_; }
  const common::PairInterner& interner() const noexcept { return *interner_; }
  /// nullptr unless config.refine is set.
  const adapt::Refiner* refiner() const noexcept { return refiner_.get(); }

  /// Persist the recorded traffic database as CSV.
  void saveTraffic(const std::string& path) const;

private:
  struct PendingRequest;
  struct MachineState;

  /// A decision already made on the submit path, carried to the queue so
  /// refiner decisions are made (and counted) exactly once per request.
  struct PreDecision {
    bool decided = false;  ///< label/explore/refined/cacheHit are valid
    bool fingerprinted = false;  ///< fp/pairId/version are valid
    bool lookedUp = false;  ///< the cache probe already ran (and missed)
    common::Fingerprint fp;
    std::uint32_t pairId = common::PairInterner::kInvalid;
    std::uint64_t version = 0;
    std::size_t label = 0;
    bool cacheHit = false;
    bool explore = false;
    bool refined = false;
  };

  MachineState& state(const std::string& name) const;
  /// Lock-free machine lookup once the map is frozen; nullptr before.
  /// Callers must have observed frozen_ == true (acquire).
  MachineState* stateFast(const std::string& name) const noexcept
      TP_LOCK_FREE_AUDITED(
          "machines_ is immutable once frozen_ is published (release in "
          "ensurePool, acquire here); TSan: test_serve "
          "PartitionService.ConcurrentClientsGetConsistentDecisions");
  /// The feedback recorder after the freeze: the pointer was written by
  /// addMachine() under machinesMutex_ and published by the frozen_
  /// release store; post-freeze readers need no lock.
  FeedbackRecorder* feedbackPostFreeze() const noexcept
      TP_LOCK_FREE_AUDITED(
          "feedback_ is write-once before frozen_ is published; hot paths "
          "only read it after an acquire of frozen_; TSan: test_serve "
          "PartitionService.ConcurrentClientsGetConsistentDecisions") {
    return feedback_.get();
  }
  /// The worker pool after the freeze (same publication contract).
  common::ThreadPool& poolPostFreeze() const noexcept
      TP_LOCK_FREE_AUDITED(
          "pool_ is write-once before frozen_ is published; TSan: "
          "test_serve PartitionService.RetrainUnderLiveTrafficDoesNot"
          "Deadlock") {
    return *pool_;
  }
  /// The full decision key of a launch at an explicit generation — the
  /// one place the (machine, program, quantized signature) layout is
  /// materialized on serving paths.
  DecisionKey fullKeyAt(const MachineState& ms, const runtime::Task& task,
                        std::uint64_t version) const;
  common::ThreadPool& ensurePool();
  /// Hook this service's counters/summaries into config_.metrics under
  /// config_.metricsPrefix (constructor-only; callbacks capture `this`).
  void registerMetrics();
  /// Record one served request into the striped latency structures and
  /// the machine's SLO tracker (when configured).
  void recordLatency(MachineState& ms, double seconds) noexcept;
  void workerLoop(MachineState& ms, std::size_t lane);
  void process(MachineState& ms, std::size_t lane, PendingRequest pending);
  std::size_t predictWithModel(const MachineState& ms,
                               const runtime::Task& task) const;
  /// Serve a warm hit on the caller thread. Returns true when `response`
  /// was filled; false leaves `carry` for the queue path.
  bool tryServeInline(MachineState& ms, const LaunchRequest& request,
                      LaunchResponse& response, PreDecision& carry);
  struct AdmitResult {
    MachineState* ms = nullptr;
    bool served = false;
  };
  /// Shared prologue of submit()/call(): resolve the machine, run the
  /// lifecycle accounting (inFlight/accepting/submitted), and attempt
  /// inline serving. Validation failures (unknown machine, post-shutdown)
  /// throw with no request admitted; inline execution faults rethrow
  /// after failed_/inFlight accounting with `inlineFault` set so submit()
  /// can translate them into a faulted future.
  AdmitResult admitAndTryInline(LaunchRequest& request,
                                LaunchResponse& response, PreDecision& carry,
                                bool& inlineFault);
  /// Amortized breaker evaluation on the admission path: bumps the
  /// machine's admission tick and runs evaluateBreaker() on every
  /// breaker.evalEvery-th admission.
  void maybeEvaluateBreaker(MachineState& ms);
  /// One breaker evaluation: judge the SLO burn rate and lane-exhaustion
  /// delta, advance the trip/clear streaks, flip the shedding flag.
  void evaluateBreaker(MachineState& ms);
  std::future<LaunchResponse> enqueue(MachineState& ms, LaunchRequest request,
                                      PreDecision carry);
  /// Execute + observe + account one decided request (both paths).
  void finishDecided(MachineState& ms, runtime::Scheduler& lane,
                     const runtime::Task& task, LaunchResponse& response,
                     const PreDecision& decision);
  void requestDone() noexcept;

  ServiceConfig config_;
  std::unique_ptr<common::PairInterner> interner_;
  std::unique_ptr<DecisionCache> cache_;
  std::unique_ptr<adapt::Refiner> refiner_;  ///< set when config_.refine

  /// Guards machines_, pool_ and feedback_ during registration; once
  /// frozen_ is published all three are immutable and the audited
  /// *PostFreeze()/stateFast() accessors read them lock-free.
  mutable common::Mutex machinesMutex_;
  std::map<std::string, std::unique_ptr<MachineState>> machines_
      TP_GUARDED_BY(machinesMutex_);
  std::unique_ptr<FeedbackRecorder> feedback_ TP_GUARDED_BY(machinesMutex_);
  /// Set (under machinesMutex_) when the pool spins up; from then on
  /// machines_ is immutable and read without the mutex.
  std::atomic<bool> frozen_{false};

  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> inFlight_{0};  ///< atomic-wait on 0 in drain()
  /// Set once mergeRemoteWins() has written remote incumbents through
  /// into the cache: such keys can be served warm without ever having
  /// missed locally, so from then on cache hits also run the feedback
  /// recorder's dedup (one mutex probe) instead of skipping it — the
  /// local traffic database keeps capturing every launch this service
  /// serves. Never set outside fleet/snapshot use: the plain warm path
  /// stays recorder-free.
  std::atomic<bool> feedbackBackfill_{false};

  common::StripedCounter submitted_;
  common::StripedCounter completed_;
  common::StripedCounter failed_;
  common::StripedCounter inlineHits_;
  /// Warm hits bounced to the batching queue because every inline lane
  /// was busy (the lane_exhaustion detector's numerator).
  common::StripedCounter inlineLaneExhausted_;
  /// Requests fast-failed by an open admission breaker (they count as
  /// completed too — every admitted request is answered exactly once).
  common::StripedCounter shed_;
  /// Closed-to-open breaker transitions across all machines.
  std::atomic<std::uint64_t> breakerTrips_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> maxBatch_{0};
  std::atomic<std::uint64_t> retrains_{0};
  /// Wall seconds of the most recent retrain() pass (last-write-wins;
  /// the retrain_overrun detector's input).
  std::atomic<double> lastRetrainSeconds_{0.0};
  LatencyRecorder latency_;
  /// Owned by config_.metrics (created in registerMetrics, destroyed by
  /// the destructor's removeByPrefix); nullptr when metrics are off.
  obs::Histogram* obsLatency_ = nullptr;

  /// Created at first submit (under machinesMutex_, published by frozen_).
  std::unique_ptr<common::ThreadPool> pool_ TP_GUARDED_BY(machinesMutex_);
};

}  // namespace tp::serve
