#pragma once

// PartitionService — the trained predictor as a long-lived, thread-safe
// serving component.
//
// Clients on any thread submit() LaunchRequests and receive a future; the
// service answers "how should this task be split?" and executes the split
// on the target machine's simulated devices. Internals:
//
//   - a sharded LRU decision cache (serve/cache.hpp) keyed by (machine,
//     program, rounded launch signature, model version), so repeated
//     traffic skips feature evaluation and inference;
//   - a per-machine batching request queue: concurrently submitted
//     requests coalesce and are drained in batches (up to maxBatch per
//     worker wakeup) by lane workers running on a common::ThreadPool.
//     Each lane owns a private vcl::Context + runtime::Scheduler, so one
//     process serves multi-machine fleets (mc1 + mc2) concurrently while
//     per-lane simulated clocks stay isolated;
//   - an online feedback recorder (serve/feedback.hpp) that measures each
//     distinct executed launch into a FeatureDatabase; retrain() refreshes
//     every machine's model from the accumulated traffic and bumps the
//     cache version, invalidating all cached decisions;
//   - an optional online refiner (adapt/refiner.hpp, config.refine): a
//     bounded local search per launch signature that probes partitioning
//     neighbors on an epsilon fraction of warm traffic, adopts measured
//     wins immediately (written back into the decision cache) and decays
//     back to the model prediction when retrain() bumps the version;
//   - a stats surface (serve/stats.hpp): request/batch counters, cache
//     hit-rate, refinement counters, p50/p95 latency, per-device
//     utilization.
//
// Shutdown drains the queue: every accepted request is answered before
// the destructor returns; submissions after shutdown() throw tp::Error.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "adapt/refiner.hpp"
#include "common/thread_pool.hpp"
#include "ml/classifier.hpp"
#include "ocl/queue.hpp"
#include "runtime/partitioning.hpp"
#include "serve/cache.hpp"
#include "serve/feedback.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"
#include "sim/machine.hpp"

namespace tp::serve {

struct ServiceConfig {
  int divisions = 10;  ///< partitioning-space step granularity (10 = 10%)
  std::size_t cacheCapacity = 1024;
  std::size_t cacheShards = 16;
  int cacheRoundDigits = 6;  ///< significant digits in cache keys
  std::size_t maxBatch = 16;  ///< max requests drained per worker wakeup
  std::size_t lanesPerMachine = 2;  ///< concurrent scheduler lanes
  std::size_t workerThreads = 0;  ///< 0 = one thread per lane
  std::size_t latencyWindow = 8192;  ///< samples kept for percentiles
  bool recordFeedback = true;  ///< measure executed launches for retrain()
  std::string retrainSpec = "forest:32";  ///< ml::makeClassifier spec
  std::uint64_t retrainSeed = 42;
  vcl::ExecMode execMode = vcl::ExecMode::TimeOnly;
  /// Online partition refinement (adapt::Refiner). Off by default: with
  /// refinement on, served labels may deliberately deviate from the pure
  /// model prediction on explored/refined traffic.
  bool refine = false;
  adapt::RefinerConfig refiner;
};

class PartitionService {
public:
  explicit PartitionService(ServiceConfig config = {});
  ~PartitionService();  ///< shutdown(): drains before destruction

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Register a machine with its deployed model. All machines must be
  /// registered before the first submit() (the worker pool is sized to
  /// the registered lanes), and must share one partitioning-space size
  /// (same device count) so feedback records share a schema.
  void addMachine(const sim::MachineConfig& machine,
                  std::shared_ptr<const ml::Classifier> model);
  /// Convenience: load a model saved with ml::Classifier::saveFile().
  void addMachine(const sim::MachineConfig& machine,
                  const std::string& modelPath);

  /// Enqueue a request; the future resolves when a lane worker has
  /// decided and executed it (or faults with tp::Error).
  std::future<LaunchResponse> submit(LaunchRequest request);

  /// Synchronous convenience wrapper around submit().
  LaunchResponse call(LaunchRequest request);

  /// The unbatched, uncached reference path: extract features and ask the
  /// machine's current model directly. Served decisions always equal this
  /// (for the same model version).
  std::size_t predictLabel(const std::string& machine,
                           const runtime::Task& task) const;

  struct RetrainResult {
    std::uint64_t modelVersion = 0;  ///< cache generation after the bump
    std::size_t machinesRetrained = 0;
    std::size_t recordsUsed = 0;  ///< feedback records in the snapshot
  };
  /// Refresh every machine's model from the recorded traffic (machines
  /// without records keep their model), then invalidate the cache.
  RetrainResult retrain();

  // ---- fleet surface ------------------------------------------------------
  // Hooks for tp::fleet: replicated serving with gossiped refiner wins,
  // model fan-out and snapshot persistence. Each is safe to call
  // concurrently with traffic.

  /// Current cache/model generation.
  std::uint64_t modelVersion() const noexcept;

  struct DeployedModel {
    std::string machine;
    std::shared_ptr<const ml::Classifier> model;
  };
  /// The deployed model of every registered machine (name order), for
  /// snapshotting. The shared_ptrs alias the live models.
  std::vector<DeployedModel> deployedModels() const;

  /// Export the refiner's transferable state (empty when refinement is
  /// off). `refinedOnly` selects adopted wins (gossip) vs every tracked
  /// key (snapshots).
  std::vector<adapt::WinRecord> exportRefinedWins(bool refinedOnly = true) const;

  /// Merge win records from a peer replica (or a snapshot): stale-version
  /// records are rejected, accepted evidence merges into the refiner, and
  /// each adopted incumbent is written through into the decision cache so
  /// warm traffic serves it without a probe. With refinement off all
  /// records count as dropped.
  adapt::MergeResult mergeRemoteWins(const std::vector<adapt::WinRecord>& wins);

  struct ModelUpdate {
    std::string machine;
    std::shared_ptr<const ml::Classifier> model;
  };
  /// Install externally trained models as generation `version` and sweep
  /// cached decisions of older generations. `version` must not be behind
  /// the current generation; installing AT the current generation drops
  /// every cached decision instead (the previous models' labels must not
  /// survive the swap as hits). Machines absent from `updates` keep
  /// their model but are stamped with the new generation (it is
  /// fleet-global). Used by fleet retrain fan-out and snapshot
  /// warm-start.
  void installModels(const std::vector<ModelUpdate>& updates,
                     std::uint64_t version);

  /// Consistent copy of the recorded feedback traffic; throws tp::Error
  /// before the first addMachine() (no schema yet).
  runtime::FeatureDatabase trafficSnapshot() const;

  /// Block until every accepted request has been answered.
  void drain();
  /// Stop accepting, then drain. Idempotent.
  void shutdown();

  ServiceStats stats() const;

  const runtime::PartitioningSpace& space(const std::string& machine) const;
  const ShardedDecisionCache& cache() const noexcept { return *cache_; }
  /// nullptr unless config.refine is set.
  const adapt::Refiner* refiner() const noexcept { return refiner_.get(); }

  /// Persist the recorded traffic database as CSV.
  void saveTraffic(const std::string& path) const;

private:
  struct PendingRequest;
  struct MachineState;

  MachineState& state(const std::string& name) const;
  common::ThreadPool& ensurePool();
  void workerLoop(MachineState& ms, std::size_t lane);
  void process(MachineState& ms, std::size_t lane, PendingRequest pending);
  std::size_t predictWithModel(const MachineState& ms,
                               const runtime::Task& task) const;

  ServiceConfig config_;
  std::unique_ptr<ShardedDecisionCache> cache_;
  std::unique_ptr<FeedbackRecorder> feedback_;  ///< set by first addMachine
  std::unique_ptr<adapt::Refiner> refiner_;     ///< set when config_.refine

  mutable std::mutex machinesMutex_;  ///< guards machines_ map + pool_ init
  std::map<std::string, std::unique_ptr<MachineState>> machines_;

  mutable std::mutex lifecycleMutex_;
  std::condition_variable idleCv_;
  bool accepting_ = true;
  std::uint64_t inFlight_ = 0;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> maxBatch_{0};
  std::atomic<std::uint64_t> retrains_{0};
  LatencyRecorder latency_;

  std::unique_ptr<common::ThreadPool> pool_;  ///< created at first submit
};

}  // namespace tp::serve
