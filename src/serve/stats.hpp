#pragma once

// Service observability: the latency distribution over a sliding window
// plus the aggregate ServiceStats snapshot returned by
// PartitionService::stats().

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "adapt/refiner.hpp"
#include "serve/cache.hpp"

namespace tp::serve {

/// Thread-safe latency window: the last `window` samples feed the
/// percentiles; count/mean/max run over every sample ever added.
class LatencyRecorder {
public:
  explicit LatencyRecorder(std::size_t window = 8192);

  void add(double seconds);

  struct Summary {
    std::uint64_t count = 0;
    double meanSeconds = 0.0;
    double maxSeconds = 0.0;
    double p50Seconds = 0.0;  ///< over the window
    double p95Seconds = 0.0;
  };
  Summary summary() const;

private:
  mutable std::mutex mutex_;
  std::size_t window_;
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Per-device share of simulated busy time on one machine.
struct DeviceUtilization {
  std::string device;        ///< device name from the machine config
  double busySeconds = 0.0;  ///< transfers + kernel time on this device
  double utilization = 0.0;  ///< busySeconds / sum of request makespans
};

struct MachineStats {
  std::string machine;
  std::uint64_t requests = 0;
  double makespanSeconds = 0.0;  ///< sum of simulated makespans
  std::uint64_t modelVersion = 0;  ///< generation of the deployed model
  std::vector<DeviceUtilization> devices;
};

/// Fleet-replication counters: gossiped refiner wins and snapshot
/// persistence. Populated by fleet::Replica::stats() (all zero when the
/// service is not part of a fleet). Reconciliation invariant:
/// winsReceived == winsMerged + winsRejectedStale + winsDropped.
struct FleetCounters {
  std::uint64_t winsSent = 0;      ///< win records broadcast to peers
  std::uint64_t winsReceived = 0;  ///< win records arrived from peers
  std::uint64_t winsMerged = 0;    ///< accepted (evidence merged)
  std::uint64_t winsAdopted = 0;   ///< merged AND moved an incumbent
  std::uint64_t winsRejectedStale = 0;  ///< dropped: model-version mismatch
  std::uint64_t winsDropped = 0;   ///< dropped: capacity / refiner off
  std::uint64_t snapshotsWritten = 0;
  std::uint64_t snapshotsLoaded = 0;
  std::uint64_t modelInstalls = 0;  ///< fleet retrain fan-ins applied
  std::uint64_t gossipRoundsSkipped = 0;  ///< no-change rounds (digest hit)
};

struct ServiceStats {
  std::uint64_t requestsSubmitted = 0;
  std::uint64_t requestsCompleted = 0;
  std::uint64_t requestsFailed = 0;  ///< completed with an exception
  std::uint64_t batches = 0;  ///< worker wakeups that drained >= 1 request
  std::uint64_t maxBatch = 0;  ///< largest single drain observed
  CacheCounters cache;
  double cacheHitRate = 0.0;
  std::uint64_t modelVersion = 0;
  std::uint64_t retrains = 0;
  std::uint64_t feedbackRecords = 0;  ///< unique launches measured
  /// Online-refinement counters (all zero when refinement is disabled).
  adapt::RefinerCounters refiner;
  std::uint64_t refinedKeys = 0;  ///< launch signatures under refinement
  FleetCounters fleet;  ///< zero unless serving as a fleet replica
  LatencyRecorder::Summary latency;
  std::vector<MachineStats> machines;  ///< insertion order
};

}  // namespace tp::serve
