#pragma once

// Service observability: the latency distribution over striped sliding
// windows plus the aggregate ServiceStats snapshot returned by
// PartitionService::stats().

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "adapt/refiner.hpp"
#include "common/striped.hpp"
#include "runtime/scheduler.hpp"
#include "serve/cache.hpp"

namespace tp::serve {

/// Thread-safe latency reservoir, striped per thread (the PR-5 rework;
/// the original serialized every add() on one mutex).
///
/// Each stripe owns a private ring of up to `window` samples plus
/// lifetime count/sum/max, guarded by a per-stripe sequence word: add()
/// claims the caller's own stripe with one CAS — uncontended unless more
/// threads than stripes are recording — writes one slot, and releases.
/// There is no global lock anywhere on the record path, and after a
/// stripe's first sample (which reserves its ring) no allocation either.
///
/// Merge-order semantics of summary(): each stripe is snapshot atomically
/// (in stripe order; a stripe may absorb new samples after its snapshot
/// was taken), the surviving windows are pooled, and the percentiles are
/// computed with common::percentile over the pooled samples — NOT by
/// averaging per-stripe percentiles, so p50/p95 over the merged
/// reservoirs equal the percentile of the union exactly. count/mean/max
/// aggregate the lifetime fields of every stripe. The retained "window"
/// is therefore per stripe (≈ per recording thread): the pooled
/// percentile pane holds up to `window` of the *most recent samples of
/// each thread* rather than the globally most recent `window`, which
/// keeps a bursty thread from evicting a quiet thread's tail latencies.
class LatencyRecorder {
public:
  explicit LatencyRecorder(std::size_t window = 8192,
                           std::size_t stripes = 0);  ///< 0 = auto

  void add(double seconds)
      TP_LOCK_FREE_AUDITED(
          "per-stripe seqlock: one CAS claim on the caller's own stripe, "
          "release publish; TSan: test_serve "
          "LatencyRecorder.SnapshotRacesWithWritersCleanly");

  struct Summary {
    std::uint64_t count = 0;
    double meanSeconds = 0.0;
    double maxSeconds = 0.0;
    double p50Seconds = 0.0;  ///< over the pooled per-stripe windows
    double p95Seconds = 0.0;
  };
  Summary summary() const
      TP_LOCK_FREE_AUDITED(
          "claims each stripe's seqlock in turn for an atomic per-stripe "
          "snapshot; TSan: test_serve "
          "LatencyRecorder.SnapshotRacesWithWritersCleanly");

private:
  struct alignas(common::kCacheLineBytes) Stripe {
    std::atomic<std::uint32_t> seq{0};  ///< odd = writer (or reader) inside
    std::vector<double> ring;           ///< reserved lazily at first add
    std::size_t next = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };

  std::size_t window_;
  mutable std::vector<Stripe> stripes_;
};

/// Per-machine request accounting, striped per thread: the inline hit
/// path and the lane workers add with relaxed atomics on their own
/// stripe; snapshot() sums. Field-level atomicity only — a snapshot racing
/// a writer may see a makespan whose request count has not landed yet;
/// totals are exact once writers quiesce.
class MachineLoadStats {
public:
  MachineLoadStats(std::size_t numDevices, std::size_t stripes = 0);

  void record(double makespanSeconds,
              const std::vector<runtime::DeviceExecution>& devices) noexcept;

  struct Snapshot {
    std::uint64_t requests = 0;
    double makespanSum = 0.0;
    std::vector<double> deviceBusySeconds;
  };
  Snapshot snapshot() const;

private:
  struct alignas(common::kCacheLineBytes) Stripe {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<double> makespanSum{0.0};
    std::vector<std::atomic<double>> deviceBusy;
  };

  std::size_t numDevices_;
  mutable std::vector<Stripe> stripes_;
};

/// Per-device share of simulated busy time on one machine.
struct DeviceUtilization {
  std::string device;        ///< device name from the machine config
  double busySeconds = 0.0;  ///< transfers + kernel time on this device
  double utilization = 0.0;  ///< busySeconds / sum of request makespans
};

struct MachineStats {
  std::string machine;
  std::uint64_t requests = 0;
  double makespanSeconds = 0.0;  ///< sum of simulated makespans
  std::uint64_t modelVersion = 0;  ///< generation of the deployed model
  std::vector<DeviceUtilization> devices;
};

/// Fleet-replication counters: gossiped refiner wins, snapshot
/// persistence, and the fault boundaries. Populated by
/// fleet::Replica::stats() (all zero when the service is not part of a
/// fleet). Reconciliation invariant:
/// winsReceived == winsMerged + winsRejectedStale + winsDropped.
struct FleetCounters {
  std::uint64_t winsSent = 0;      ///< win records broadcast to peers
  std::uint64_t winsReceived = 0;  ///< win records arrived from peers
  std::uint64_t winsMerged = 0;    ///< accepted (evidence merged)
  std::uint64_t winsAdopted = 0;   ///< merged AND moved an incumbent
  std::uint64_t winsRejectedStale = 0;  ///< dropped: model-version mismatch
  std::uint64_t winsDropped = 0;   ///< dropped: capacity / refiner off
  std::uint64_t snapshotsWritten = 0;
  std::uint64_t snapshotsLoaded = 0;
  std::uint64_t modelInstalls = 0;  ///< fleet retrain fan-ins applied
  std::uint64_t gossipRoundsSkipped = 0;  ///< no-change rounds (digest hit)
  // Fault-path counters (the chaos boundaries; exact by construction).
  std::uint64_t sendFailures = 0;   ///< peer sends that threw
  std::uint64_t sendRetries = 0;    ///< sends re-attempted after a failure
  std::uint64_t envelopesReceived = 0;  ///< every envelope handler entry
  std::uint64_t decodeFailures = 0;  ///< corrupt/unexpected payloads dropped
  std::uint64_t replaysRejected = 0;  ///< duplicate/stale sequence numbers
  std::uint64_t retrainsAborted = 0;  ///< quorum/lease safe no-ops
  std::uint64_t installsRejectedLease = 0;  ///< installs from non-holders
  std::uint64_t snapshotsSalvaged = 0;  ///< corrupt snapshots skipped on load
};

struct ServiceStats {
  std::uint64_t requestsSubmitted = 0;
  std::uint64_t requestsCompleted = 0;
  std::uint64_t requestsFailed = 0;  ///< completed with an exception
  std::uint64_t batches = 0;  ///< worker wakeups that drained >= 1 request
  std::uint64_t maxBatch = 0;  ///< largest single drain observed
  std::uint64_t requestsInline = 0;  ///< warm hits served on caller threads
  /// Warm hits bounced to the queue because every inline lane was busy.
  std::uint64_t inlineLaneExhausted = 0;
  /// Requests fast-failed by an open admission breaker (included in
  /// requestsCompleted; the response carried LaunchResponse::shed).
  std::uint64_t requestsShed = 0;
  /// Closed-to-open admission-breaker transitions across all machines.
  std::uint64_t breakerTrips = 0;
  CacheCounters cache;
  double cacheHitRate = 0.0;
  std::uint64_t modelVersion = 0;
  std::uint64_t retrains = 0;
  std::uint64_t feedbackRecords = 0;  ///< unique launches measured
  std::uint64_t internedPairs = 0;  ///< distinct (machine, program) pairs
  /// intern() calls rejected because the pair table was full; each one
  /// served its launch through the uncached, unrefined model path.
  std::uint64_t internRejections = 0;
  /// Online-refinement counters (all zero when refinement is disabled).
  adapt::RefinerCounters refiner;
  std::uint64_t refinedKeys = 0;  ///< launch signatures under refinement
  FleetCounters fleet;  ///< zero unless serving as a fleet replica
  LatencyRecorder::Summary latency;
  std::vector<MachineStats> machines;  ///< insertion order
};

}  // namespace tp::serve
