#include "serve/stats.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace tp::serve {

LatencyRecorder::LatencyRecorder(std::size_t window, std::size_t stripes)
    : window_(window) {
  TP_REQUIRE(window > 0, "LatencyRecorder: window must be > 0");
  stripes_ =
      std::vector<Stripe>(stripes == 0 ? common::defaultStripes() : stripes);
}

void LatencyRecorder::add(double seconds) {
  Stripe& stripe = stripes_[common::threadStripe(stripes_.size())];
  const std::uint32_t s = common::seqClaim(stripe.seq);
  if (stripe.ring.capacity() == 0) {
    // One-time reservation the first time this stripe records, so the
    // steady-state path never allocates and idle stripes cost nothing.
    stripe.ring.reserve(window_);
  }
  if (stripe.ring.size() < window_) {
    stripe.ring.push_back(seconds);
  } else {
    stripe.ring[stripe.next] = seconds;
  }
  stripe.next = (stripe.next + 1) % window_;
  ++stripe.count;
  stripe.sum += seconds;
  stripe.max = std::max(stripe.max, seconds);
  common::seqRelease(stripe.seq, s);
}

LatencyRecorder::Summary LatencyRecorder::summary() const {
  Summary out;
  std::vector<double> pooled;
  double sum = 0.0;
  for (Stripe& stripe : stripes_) {
    const std::uint32_t s = common::seqClaim(stripe.seq);
    pooled.insert(pooled.end(), stripe.ring.begin(), stripe.ring.end());
    out.count += stripe.count;
    sum += stripe.sum;
    out.maxSeconds = std::max(out.maxSeconds, stripe.max);
    common::seqRelease(stripe.seq, s);
  }
  if (out.count == 0) return out;
  out.meanSeconds = sum / static_cast<double>(out.count);
  // Percentiles over the pooled union of the per-stripe windows — exactly
  // common::percentile of the merged samples (see the class comment for
  // the merge-order semantics).
  out.p50Seconds = common::percentile(pooled, 50.0);
  out.p95Seconds = common::percentile(std::move(pooled), 95.0);
  return out;
}

MachineLoadStats::MachineLoadStats(std::size_t numDevices,
                                   std::size_t stripes)
    : numDevices_(numDevices) {
  stripes_ =
      std::vector<Stripe>(stripes == 0 ? common::defaultStripes() : stripes);
  for (Stripe& s : stripes_) {
    s.deviceBusy = std::vector<std::atomic<double>>(numDevices_);
  }
}

void MachineLoadStats::record(
    double makespanSeconds,
    const std::vector<runtime::DeviceExecution>& devices) noexcept {
  Stripe& stripe = stripes_[common::threadStripe(stripes_.size())];
  stripe.requests.fetch_add(1, std::memory_order_relaxed);
  common::atomicAdd(stripe.makespanSum, makespanSeconds);
  for (const auto& dev : devices) {
    common::atomicAdd(stripe.deviceBusy[dev.device],
                      dev.transferInSeconds + dev.kernelSeconds +
                          dev.transferOutSeconds);
  }
}

MachineLoadStats::Snapshot MachineLoadStats::snapshot() const {
  Snapshot out;
  out.deviceBusySeconds.assign(numDevices_, 0.0);
  for (const Stripe& stripe : stripes_) {
    out.requests += stripe.requests.load(std::memory_order_relaxed);
    out.makespanSum += stripe.makespanSum.load(std::memory_order_relaxed);
    for (std::size_t d = 0; d < numDevices_; ++d) {
      out.deviceBusySeconds[d] +=
          stripe.deviceBusy[d].load(std::memory_order_relaxed);
    }
  }
  return out;
}

}  // namespace tp::serve
