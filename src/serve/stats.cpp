#include "serve/stats.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace tp::serve {

LatencyRecorder::LatencyRecorder(std::size_t window) : window_(window) {
  TP_REQUIRE(window > 0, "LatencyRecorder: window must be > 0");
  ring_.reserve(window);
}

void LatencyRecorder::add(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < window_) {
    ring_.push_back(seconds);
  } else {
    ring_[next_] = seconds;
  }
  next_ = (next_ + 1) % window_;
  ++count_;
  sum_ += seconds;
  max_ = std::max(max_, seconds);
}

LatencyRecorder::Summary LatencyRecorder::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.meanSeconds = sum_ / static_cast<double>(count_);
  s.maxSeconds = max_;
  s.p50Seconds = common::percentile(ring_, 50.0);
  s.p95Seconds = common::percentile(ring_, 95.0);
  return s;
}

}  // namespace tp::serve
