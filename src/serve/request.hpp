#pragma once

// Request/response types of the partitioning-prediction service.
//
// A LaunchRequest is one client question — "how should this kernel launch
// be split across the devices of this machine?" — and the LaunchResponse
// carries the answer (the chosen partitioning) together with the simulated
// execution under it, so closed-loop clients observe the cost of the
// decision they were given.

#include <cstdint>
#include <string>

#include "runtime/partitioning.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"

namespace tp::serve {

struct LaunchRequest {
  std::string machine;  ///< target machine name (must be addMachine()d)
  runtime::Task task;   ///< the launch to partition and execute
  /// Problem-size tag stored with feedback records; derived from the
  /// NDRange ("n=<globalSize>") when left empty.
  std::string sizeLabel;
};

struct LaunchResponse {
  std::size_t label = 0;  ///< index into the machine's partitioning space
  runtime::Partitioning partitioning;  ///< the chosen split
  runtime::ExecutionResult execution;  ///< simulated run under the split
  bool cacheHit = false;  ///< decision served from the cache?
  std::uint64_t modelVersion = 0;  ///< model generation that decided
  bool explored = false;  ///< refinement probe (bypassed the cache)
  bool refined = false;   ///< label differs from the model's prediction
  /// Load-shed fast-fail: the machine's admission breaker was open, so
  /// the request was answered immediately WITHOUT deciding or executing
  /// anything — label/partitioning/execution are default-constructed.
  /// Clients should back off and retry later.
  bool shed = false;
};

}  // namespace tp::serve
