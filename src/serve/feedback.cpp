#include "serve/feedback.hpp"

#include "runtime/evaluation.hpp"

namespace tp::serve {

FeedbackRecorder::FeedbackRecorder(std::size_t numPartitionings,
                                   int roundDigits)
    : roundDigits_(roundDigits),
      db_(runtime::FeatureDatabase::withDefaultSchema(numPartitionings)) {}

DecisionKey FeedbackRecorder::dedupKey(const runtime::Task& task,
                                       const std::string& machine) const {
  DecisionKey key;
  key.machine = machine;
  key.program = programKey(task);
  key.features = launchSignature(task);
  for (double& f : key.features) f = roundSignificant(f, roundDigits_);
  return key;
}

bool FeedbackRecorder::record(const runtime::Task& task,
                              const sim::MachineConfig& machine,
                              const runtime::PartitioningSpace& space,
                              const std::string& sizeLabel) {
  const DecisionKey key = dedupKey(task, machine.name);
  {
    common::MutexLock lock(mutex_);
    if (seen_.count(key) != 0) return false;
  }
  // The sweep simulates every partitioning — keep it outside the lock so
  // concurrent recorders of *different* launches don't serialize. A racing
  // duplicate of the same launch just loses the insert below.
  runtime::LaunchRecord rec =
      runtime::measureLaunch(task, machine, space, sizeLabel);
  common::MutexLock lock(mutex_);
  if (!seen_.insert(key).second) return false;
  db_.add(std::move(rec));
  return true;
}

std::size_t FeedbackRecorder::size() const {
  common::MutexLock lock(mutex_);
  return db_.size();
}

runtime::FeatureDatabase FeedbackRecorder::snapshot() const {
  common::MutexLock lock(mutex_);
  return db_;
}

void FeedbackRecorder::saveCsv(const std::string& path) const {
  snapshot().saveCsv(path);
}

}  // namespace tp::serve
