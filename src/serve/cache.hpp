#pragma once

// Sharded LRU decision cache.
//
// Keyed by (machine, program, rounded launch signature, model version):
// repeated traffic for the same kernel at the same problem size skips
// symbolic feature evaluation and model inference entirely. The signature
// is everything the runtime knows at launch without evaluating the static
// feature expressions — NDRange, transfer volumes, transfer amortization
// and the bound scalar parameters — quantized to a fixed number of
// significant decimal digits so bitwise jitter in derived quantities
// cannot fragment the cache while genuinely different problem sizes stay
// distinct. Two launches of the same compiled program with equal
// signatures have equal combined feature vectors, so serving a cached
// label is exactly what the model would have predicted.
//
// Each shard is an independently mutex-guarded LRU list: concurrent
// lookups contend only when they hash to the same shard. Bumping the
// model version (done by PartitionService::retrain()) invalidates every
// cached decision — entries are dropped eagerly and in-flight inserts
// stamped with a stale version are discarded on arrival.

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/task.hpp"

namespace tp::serve {

/// Round to `digits` significant decimal digits; `digits <= 0` disables
/// rounding. Normalizes -0.0 to 0.0 so quantized values hash uniformly.
double roundSignificant(double v, int digits);

/// The runtime-known launch signature used in cache keys and feedback
/// deduplication: global/local size, transfer volumes, transfer
/// amortization and the bound scalar parameters in name order.
std::vector<double> launchSignature(const runtime::Task& task);

/// "program/kernel" — the program part of a decision key.
std::string programKey(const runtime::Task& task);

struct DecisionKey {
  std::string machine;
  std::string program;
  std::uint64_t modelVersion = 0;
  std::vector<double> features;  ///< quantized launch signature

  bool operator==(const DecisionKey& o) const = default;
};

struct DecisionKeyHash {
  std::size_t operator()(const DecisionKey& k) const noexcept;
};

/// Monotonic event counters, aggregated across shards by counters().
struct CacheCounters {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;  ///< new entries only (not refreshes)
  std::uint64_t evictions = 0;   ///< LRU capacity evictions
  std::uint64_t invalidations = 0;  ///< entries dropped by clear()

  double hitRate() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class ShardedDecisionCache {
public:
  /// `capacity` is the total entry budget, split over min(numShards,
  /// capacity) shards; per-shard budgets differ by at most one and sum to
  /// exactly `capacity`, so total occupancy never exceeds it.
  explicit ShardedDecisionCache(std::size_t capacity,
                                std::size_t numShards = 16,
                                int roundDigits = 6);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t numShards() const noexcept { return shards_.size(); }
  int roundDigits() const noexcept { return roundDigits_; }

  /// Quantize `features` and stamp the current model version.
  DecisionKey makeKey(std::string machine, std::string program,
                      std::vector<double> features) const;

  /// nullopt on miss. A hit refreshes the entry's LRU position.
  std::optional<std::size_t> lookup(const DecisionKey& key);

  /// Insert or refresh; evicts the shard's LRU tail beyond its budget.
  /// Keys stamped with a stale model version are discarded.
  void insert(const DecisionKey& key, std::size_t label);

  std::uint64_t version() const noexcept;
  /// Invalidate every cached decision of older generations: bump the
  /// version (stale in-flight inserts get dropped) and sweep entries
  /// stamped with any previous version. An insert that carries the *new*
  /// version and lands while the sweep is still walking the shards
  /// survives it — fresh decisions are never thrown away. Returns the new
  /// version.
  std::uint64_t bumpVersion();

  /// Move the version forward to `version` (a no-op when it is not ahead
  /// of the current one) and sweep entries of older generations. Used by
  /// fleet model fan-out and snapshot warm-start, where the generation
  /// number is decided elsewhere and replicas must converge on it; the
  /// version never moves backward. Returns the version now in effect.
  std::uint64_t advanceVersion(std::uint64_t version);

  /// Drop entries whose key version differs from the current version
  /// (counted as invalidations). The tail half of bumpVersion(), exposed
  /// so the sweep-vs-fresh-insert interleaving is testable.
  void clearStale();

  /// Drop all entries (counted as invalidations); keeps the version.
  void clear();

  std::size_t size() const;
  CacheCounters counters() const;

private:
  struct Entry {
    DecisionKey key;
    std::size_t label = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<DecisionKey, std::list<Entry>::iterator,
                       DecisionKeyHash>
        index;
    std::size_t capacity = 0;
    CacheCounters counters;
  };

  Shard& shardFor(const DecisionKey& key) const;

  std::size_t capacity_;
  int roundDigits_;
  std::atomic<std::uint64_t> version_{0};
  mutable std::vector<Shard> shards_;
};

}  // namespace tp::serve
