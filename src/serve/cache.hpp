#pragma once

// Fingerprinted decision cache — the warm-request fast path.
//
// Keyed by a 128-bit fingerprint of (interned (machine, program) pair id,
// quantized launch signature): repeated traffic for the same kernel at the
// same problem size skips symbolic feature evaluation and model inference
// entirely. The signature is everything the runtime knows at launch
// without evaluating the static feature expressions — NDRange, transfer
// volumes, transfer amortization and the bound scalar parameters —
// quantized to a fixed number of significant decimal digits so bitwise
// jitter in derived quantities cannot fragment the cache while genuinely
// different problem sizes stay distinct. Two launches of the same compiled
// program with equal signatures have equal combined feature vectors, so
// serving a cached label is exactly what the model would have predicted.
//
// Concurrency model (the PR-5 rework; the original was mutex-guarded LRU
// shards):
//
//   - fixed-capacity open-addressing table, bounded linear probe window;
//   - readers are seqlock-style: per-slot sequence word, retry on a torn
//     snapshot — a cache hit performs no heap allocation and acquires no
//     lock, only atomic loads plus striped relaxed counter adds (and a
//     CLOCK reference-bit store the first time a resident entry is hit);
//   - writers (the miss path) claim a slot by CAS-ing its sequence word
//     odd, write the fields, and release it even. Two racing inserts of
//     the same key may transiently occupy two slots; both carry the same
//     label (labels are a pure function of the key at a fixed model
//     version), so hits stay correct and the duplicate ages out;
//   - eviction is CLOCK second-chance within the probe window (hits set a
//     reference bit; the insert scan clears set bits and evicts the first
//     unreferenced slot) instead of LRU list splicing;
//   - model-version bumps are an epoch sweep: the version counter moves
//     first (stale in-flight inserts get dropped — the insert re-checks
//     the version inside its slot critical section), then the sweep walks
//     every slot and clears older generations. An insert carrying the new
//     version that lands mid-sweep survives it — the PR-3 forward-only
//     invalidation semantics are preserved.
//
// Readers compare fingerprints only. The full key is stored beside the
// table and verified on insert: an insert that lands on a matching
// fingerprint with a different full key is a detected 128-bit collision
// (counted, and the newer key wins). A collision that is never
// re-inserted could in principle serve a wrong label to a reader; with
// two independently-seeded avalanche-finalized 64-bit streams the odds
// are ~2^-64 per distinct-key pair — accepted, and the differential test
// exercises the verification path explicitly.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/striped.hpp"
#include "runtime/task.hpp"

namespace tp::serve {

/// Round to `digits` significant decimal digits; `digits <= 0` disables
/// rounding. Normalizes -0.0 to 0.0 so quantized values hash uniformly.
double roundSignificant(double v, int digits);

/// The runtime-known launch signature used in cache keys and feedback
/// deduplication: global/local size, transfer volumes, transfer
/// amortization and the bound scalar parameters in name order.
std::vector<double> launchSignature(const runtime::Task& task);

/// "program/kernel" — the program part of a decision key.
std::string programKey(const runtime::Task& task);

/// Full decision key: retained on the insert path for fingerprint-
/// collision verification, and used by feedback deduplication. Never
/// touched by cache hits.
struct DecisionKey {
  std::string machine;
  std::string program;
  std::uint64_t modelVersion = 0;
  std::vector<double> features;  ///< quantized launch signature

  bool operator==(const DecisionKey& o) const = default;
};

struct DecisionKeyHash {
  std::size_t operator()(const DecisionKey& k) const noexcept;
};

/// 128-bit hot-path identity of a launch: the interned (machine, program)
/// pair id folded with the quantized signature. The streaming overload
/// quantizes on the fly in launchSignature() field order — it never
/// materializes the signature vector, so the warm path allocates nothing.
/// Both overloads produce identical fingerprints for identical launches.
common::Fingerprint launchFingerprint(std::uint32_t pairId,
                                      const runtime::Task& task,
                                      int roundDigits) noexcept;
common::Fingerprint launchFingerprint(
    std::uint32_t pairId, const std::vector<double>& quantizedSignature) noexcept;

/// Monotonic event counters, striped internally; counters() sums stripes.
struct CacheCounters {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;  ///< occupancy-creating inserts (not refreshes)
  std::uint64_t evictions = 0;   ///< CLOCK capacity evictions
  std::uint64_t invalidations = 0;  ///< entries dropped by sweeps/clear()
  std::uint64_t collisions = 0;  ///< fingerprint matches with differing keys

  double hitRate() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class DecisionCache {
public:
  /// `capacity` is rounded up to a power of two (capacity() reports the
  /// effective value); occupancy never exceeds it.
  explicit DecisionCache(std::size_t capacity, int roundDigits = 6);

  std::size_t capacity() const noexcept { return numSlots_; }
  int roundDigits() const noexcept { return roundDigits_; }

  /// Quantize `features` and stamp the current model version (miss path —
  /// allocates; the hit path needs only the fingerprint).
  DecisionKey makeKey(std::string machine, std::string program,
                      std::vector<double> features) const;

  /// Label cached for `fp` at exactly model generation `version`, or
  /// nullopt. Lock-free and allocation-free; sets the entry's CLOCK
  /// reference bit on a hit.
  std::optional<std::size_t> lookup(const common::Fingerprint& fp,
                                    std::uint64_t version) noexcept
      TP_LOCK_FREE_AUDITED(
          "seqlock reader: retries on a torn slot snapshot (odd or moved "
          "sequence word); TSan: test_serve_cache "
          "DecisionCacheDifferential.ConcurrentHitsUnderContentionStayExact");

  /// Insert or refresh. `key` must be the full key behind `fp` (stored
  /// for collision verification). Keys stamped with a stale model version
  /// are discarded — the check runs inside the slot critical section, so
  /// an insert racing a version sweep either carries the new version or
  /// is dropped/swept, never resurrected.
  void insert(const common::Fingerprint& fp, const DecisionKey& key,
              std::size_t label)
      TP_LOCK_FREE_AUDITED(
          "seqlock writer: claims a slot by CAS-ing its sequence word odd, "
          "releases even; racing same-key inserts carry equal labels; TSan: "
          "test_serve_cache DecisionCacheDifferential."
          "ConcurrentStreamWithVersionBumps");

  std::uint64_t version() const noexcept;
  /// Invalidate every cached decision of older generations: bump the
  /// version (stale in-flight inserts get dropped) and sweep entries
  /// stamped with any previous version. An insert that carries the *new*
  /// version and lands while the sweep is still walking the table
  /// survives it — fresh decisions are never thrown away. Returns the new
  /// version.
  std::uint64_t bumpVersion();

  /// Move the version forward to `version` (a no-op when it is not ahead
  /// of the current one) and sweep entries of older generations. Used by
  /// fleet model fan-out and snapshot warm-start, where the generation
  /// number is decided elsewhere and replicas must converge on it; the
  /// version never moves backward. Returns the version now in effect.
  std::uint64_t advanceVersion(std::uint64_t version);

  /// Drop entries whose version differs from the current version (counted
  /// as invalidations). The tail half of bumpVersion(), exposed so the
  /// sweep-vs-fresh-insert interleaving is testable.
  void clearStale();

  /// Drop all entries (counted as invalidations); keeps the version.
  void clear();

  std::size_t size() const;
  CacheCounters counters() const;

private:
  struct Slot {
    std::atomic<std::uint32_t> seq{0};  ///< odd = writer inside
    std::atomic<std::uint32_t> ref{0};  ///< CLOCK second-chance bit
    std::atomic<std::uint64_t> fpHi{0};
    std::atomic<std::uint64_t> fpLo{0};
    std::atomic<std::uint64_t> meta{0};  ///< occupied | version | label
  };
  struct alignas(common::kCacheLineBytes) CounterStripe {
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> invalidations{0};
    std::atomic<std::uint64_t> collisions{0};
  };

  CounterStripe& stripe() noexcept {
    return counterStripes_[common::threadStripe(counterStripes_.size())];
  }
  void sweep(bool staleOnly);

  std::size_t numSlots_;
  std::size_t mask_;
  std::size_t window_;  ///< bounded linear-probe window
  int roundDigits_;
  std::atomic<std::uint64_t> version_{0};
  std::vector<Slot> slots_;
  std::unique_ptr<DecisionKey[]> fullKeys_;  ///< slot-parallel; writers only
  mutable std::vector<CounterStripe> counterStripes_;
};

}  // namespace tp::serve
