#pragma once

// Pretty-printer: renders IR back to OpenCL-like source. Primarily a
// debugging aid, but also used by round-trip tests (print → reparse →
// structurally equivalent features).

#include <string>

#include "ir/node.hpp"

namespace tp::ir {

std::string printExpr(const Expr& e);
std::string printStmt(const Stmt& s, int indent = 0);
std::string printKernel(const KernelDecl& k);
std::string printProgram(const Program& p);

}  // namespace tp::ir
