#include "ir/type.hpp"

namespace tp::ir {

const char* scalarName(Scalar s) {
  switch (s) {
    case Scalar::Void: return "void";
    case Scalar::Bool: return "bool";
    case Scalar::Int: return "int";
    case Scalar::UInt: return "uint";
    case Scalar::Float: return "float";
  }
  return "?";
}

const char* addrSpaceName(AddrSpace s) {
  switch (s) {
    case AddrSpace::None: return "";
    case AddrSpace::Global: return "__global";
    case AddrSpace::Local: return "__local";
    case AddrSpace::Private: return "__private";
  }
  return "?";
}

std::string Type::toString() const {
  std::string out;
  if (pointer_) {
    const char* space = addrSpaceName(space_);
    if (*space) {
      out += space;
      out += ' ';
    }
    out += scalarName(scalar_);
    out += '*';
  } else {
    out = scalarName(scalar_);
  }
  return out;
}

int Type::elementBytes() const noexcept {
  switch (scalar_) {
    case Scalar::Void: return 0;
    case Scalar::Bool: return 1;
    case Scalar::Int:
    case Scalar::UInt:
    case Scalar::Float: return 4;
  }
  return 0;
}

}  // namespace tp::ir
