#include "ir/clone.hpp"

namespace tp::ir {

ExprPtr cloneExpr(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::IntLit: {
      const auto& n = static_cast<const IntLit&>(e);
      return std::make_unique<IntLit>(n.value(), n.type());
    }
    case ExprKind::FloatLit:
      return std::make_unique<FloatLit>(
          static_cast<const FloatLit&>(e).value());
    case ExprKind::VarRef: {
      const auto& n = static_cast<const VarRef&>(e);
      return std::make_unique<VarRef>(n.name(), n.type());
    }
    case ExprKind::Unary: {
      const auto& n = static_cast<const UnaryExpr&>(e);
      return std::make_unique<UnaryExpr>(n.op(), cloneExpr(n.operand()));
    }
    case ExprKind::Binary: {
      const auto& n = static_cast<const BinaryExpr&>(e);
      return std::make_unique<BinaryExpr>(n.op(), cloneExpr(n.lhs()),
                                          cloneExpr(n.rhs()), n.type());
    }
    case ExprKind::Call: {
      const auto& n = static_cast<const CallExpr&>(e);
      std::vector<ExprPtr> args;
      args.reserve(n.args().size());
      for (const auto& a : n.args()) args.push_back(cloneExpr(*a));
      return std::make_unique<CallExpr>(n.callee(), std::move(args), n.type());
    }
    case ExprKind::Index: {
      const auto& n = static_cast<const IndexExpr&>(e);
      return std::make_unique<IndexExpr>(cloneExpr(n.base()),
                                         cloneExpr(n.index()));
    }
    case ExprKind::Cast: {
      const auto& n = static_cast<const CastExpr&>(e);
      return std::make_unique<CastExpr>(n.type(), cloneExpr(n.value()));
    }
    case ExprKind::Select: {
      const auto& n = static_cast<const SelectExpr&>(e);
      return std::make_unique<SelectExpr>(cloneExpr(n.cond()),
                                          cloneExpr(n.ifTrue()),
                                          cloneExpr(n.ifFalse()));
    }
  }
  TP_ASSERT(false);
  return nullptr;
}

}  // namespace tp::ir
