#include "ir/verify.hpp"

#include <set>

#include "common/error.hpp"
#include "common/str.hpp"

namespace tp::ir {

namespace {

class VerifyContext {
public:
  explicit VerifyContext(const KernelDecl& kernel) : kernel_(kernel) {
    std::set<std::string> names;
    for (const auto& p : kernel.params()) {
      if (!names.insert(p.name).second) {
        problems_.push_back("duplicate parameter name: " + p.name);
      }
    }
    scopes_.push_back(std::move(names));
  }

  std::vector<std::string> run() {
    checkStmt(kernel_.body());
    return std::move(problems_);
  }

private:
  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }

  void declare(const std::string& name) {
    if (isDeclared(name)) {
      problems_.push_back("shadowing or redeclaration of: " + name);
    }
    scopes_.back().insert(name);
  }

  bool isDeclared(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->count(name) != 0) return true;
    }
    return false;
  }

  void checkExpr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
        break;
      case ExprKind::VarRef: {
        const auto& v = static_cast<const VarRef&>(e);
        if (!isDeclared(v.name())) {
          problems_.push_back("use of undeclared variable: " + v.name());
        }
        break;
      }
      case ExprKind::Unary:
        checkExpr(static_cast<const UnaryExpr&>(e).operand());
        break;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        if (b.lhs().type().isPointer() || b.rhs().type().isPointer()) {
          problems_.push_back("pointer used in arithmetic: " +
                              std::string(binaryOpName(b.op())));
        }
        checkExpr(b.lhs());
        checkExpr(b.rhs());
        break;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(e);
        for (const auto& a : c.args()) checkExpr(*a);
        break;
      }
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        if (!ix.base().type().isPointer()) {
          problems_.push_back("indexing a non-pointer expression");
        }
        if (ix.index().type().isPointer()) {
          problems_.push_back("pointer used as subscript");
        }
        checkExpr(ix.base());
        checkExpr(ix.index());
        break;
      }
      case ExprKind::Cast:
        checkExpr(static_cast<const CastExpr&>(e).value());
        break;
      case ExprKind::Select: {
        const auto& s = static_cast<const SelectExpr&>(e);
        if (s.ifTrue().type() != s.ifFalse().type()) {
          problems_.push_back("select arms have mismatched types");
        }
        checkExpr(s.cond());
        checkExpr(s.ifTrue());
        checkExpr(s.ifFalse());
        break;
      }
    }
  }

  void checkStmt(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init() != nullptr) checkExpr(*d.init());
        declare(d.name());
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        if (a.target().kind() == ExprKind::VarRef &&
            a.target().type().isPointer()) {
          problems_.push_back("assignment to a pointer variable");
        }
        checkExpr(a.target());
        checkExpr(a.value());
        break;
      }
      case StmtKind::ExprEval:
        checkExpr(static_cast<const ExprStmt&>(s).expr());
        break;
      case StmtKind::Compound: {
        pushScope();
        for (const auto& st : static_cast<const CompoundStmt&>(s).stmts()) {
          checkStmt(*st);
        }
        popScope();
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        checkExpr(i.cond());
        checkStmt(i.thenBody());
        if (i.elseBody() != nullptr) checkStmt(*i.elseBody());
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        checkExpr(f.init());
        pushScope();
        declare(f.var());
        checkExpr(f.bound());
        checkStmt(f.body());
        popScope();
        break;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        checkExpr(w.cond());
        checkStmt(w.body());
        break;
      }
      case StmtKind::Barrier:
      case StmtKind::Break:
      case StmtKind::Continue:
        break;
      case StmtKind::Return: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value() != nullptr) {
          problems_.push_back("kernel returns a value (kernels are void)");
          checkExpr(*r.value());
        }
        break;
      }
    }
  }

  const KernelDecl& kernel_;
  std::vector<std::set<std::string>> scopes_;
  std::vector<std::string> problems_;
};

}  // namespace

std::vector<std::string> verifyKernel(const KernelDecl& kernel) {
  return VerifyContext(kernel).run();
}

void verifyKernelOrThrow(const KernelDecl& kernel) {
  const auto problems = verifyKernel(kernel);
  if (!problems.empty()) {
    TP_THROW("kernel '" << kernel.name()
                        << "' failed verification:\n  "
                        << common::join(problems, "\n  "));
  }
}

}  // namespace tp::ir
