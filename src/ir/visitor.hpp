#pragma once

// Depth-first const visitor over the IR. Default implementations recurse
// into children, so analyses override only the nodes they care about and
// call the base method to keep traversing.

#include "ir/node.hpp"

namespace tp::ir {

class Visitor {
public:
  virtual ~Visitor() = default;

  // Expressions
  virtual void visit(const IntLit&) {}
  virtual void visit(const FloatLit&) {}
  virtual void visit(const VarRef&) {}
  virtual void visit(const UnaryExpr& e) { e.operand().accept(*this); }
  virtual void visit(const BinaryExpr& e) {
    e.lhs().accept(*this);
    e.rhs().accept(*this);
  }
  virtual void visit(const CallExpr& e) {
    for (const auto& a : e.args()) a->accept(*this);
  }
  virtual void visit(const IndexExpr& e) {
    e.base().accept(*this);
    e.index().accept(*this);
  }
  virtual void visit(const CastExpr& e) { e.value().accept(*this); }
  virtual void visit(const SelectExpr& e) {
    e.cond().accept(*this);
    e.ifTrue().accept(*this);
    e.ifFalse().accept(*this);
  }

  // Statements
  virtual void visit(const DeclStmt& s) {
    if (s.init() != nullptr) s.init()->accept(*this);
  }
  virtual void visit(const AssignStmt& s) {
    s.target().accept(*this);
    s.value().accept(*this);
  }
  virtual void visit(const ExprStmt& s) { s.expr().accept(*this); }
  virtual void visit(const CompoundStmt& s) {
    for (const auto& st : s.stmts()) st->accept(*this);
  }
  virtual void visit(const IfStmt& s) {
    s.cond().accept(*this);
    s.thenBody().accept(*this);
    if (s.elseBody() != nullptr) s.elseBody()->accept(*this);
  }
  virtual void visit(const ForStmt& s) {
    s.init().accept(*this);
    s.bound().accept(*this);
    s.body().accept(*this);
  }
  virtual void visit(const WhileStmt& s) {
    s.cond().accept(*this);
    s.body().accept(*this);
  }
  virtual void visit(const BarrierStmt&) {}
  virtual void visit(const ReturnStmt& s) {
    if (s.value() != nullptr) s.value()->accept(*this);
  }
  virtual void visit(const BreakStmt&) {}
  virtual void visit(const ContinueStmt&) {}
};

}  // namespace tp::ir
