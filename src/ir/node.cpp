#include "ir/node.hpp"

#include "ir/visitor.hpp"

namespace tp::ir {

const char* unaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::Neg: return "-";
    case UnaryOp::Not: return "!";
  }
  return "?";
}

const char* binaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::LogicalAnd: return "&&";
    case BinaryOp::LogicalOr: return "||";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
  }
  return "?";
}

bool isComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne: return true;
    default: return false;
  }
}

bool isLogical(BinaryOp op) {
  return op == BinaryOp::LogicalAnd || op == BinaryOp::LogicalOr;
}

void IntLit::accept(Visitor& v) const { v.visit(*this); }
void FloatLit::accept(Visitor& v) const { v.visit(*this); }
void VarRef::accept(Visitor& v) const { v.visit(*this); }
void UnaryExpr::accept(Visitor& v) const { v.visit(*this); }
void BinaryExpr::accept(Visitor& v) const { v.visit(*this); }
void CallExpr::accept(Visitor& v) const { v.visit(*this); }
void IndexExpr::accept(Visitor& v) const { v.visit(*this); }
void CastExpr::accept(Visitor& v) const { v.visit(*this); }
void SelectExpr::accept(Visitor& v) const { v.visit(*this); }

void DeclStmt::accept(Visitor& v) const { v.visit(*this); }
void AssignStmt::accept(Visitor& v) const { v.visit(*this); }
void ExprStmt::accept(Visitor& v) const { v.visit(*this); }
void CompoundStmt::accept(Visitor& v) const { v.visit(*this); }
void IfStmt::accept(Visitor& v) const { v.visit(*this); }
void ForStmt::accept(Visitor& v) const { v.visit(*this); }
void WhileStmt::accept(Visitor& v) const { v.visit(*this); }
void BarrierStmt::accept(Visitor& v) const { v.visit(*this); }
void ReturnStmt::accept(Visitor& v) const { v.visit(*this); }
void BreakStmt::accept(Visitor& v) const { v.visit(*this); }
void ContinueStmt::accept(Visitor& v) const { v.visit(*this); }

}  // namespace tp::ir
