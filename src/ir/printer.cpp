#include "ir/printer.hpp"

#include <sstream>

#include "common/str.hpp"

namespace tp::ir {

namespace {

void emitExpr(std::ostream& os, const Expr& e);

void emitParenExpr(std::ostream& os, const Expr& e) {
  // Parenthesize everything non-atomic; correctness over beauty.
  const bool atomic = e.kind() == ExprKind::IntLit ||
                      e.kind() == ExprKind::FloatLit ||
                      e.kind() == ExprKind::VarRef ||
                      e.kind() == ExprKind::Call ||
                      e.kind() == ExprKind::Index;
  if (atomic) {
    emitExpr(os, e);
  } else {
    os << '(';
    emitExpr(os, e);
    os << ')';
  }
}

void emitExpr(std::ostream& os, const Expr& e) {
  switch (e.kind()) {
    case ExprKind::IntLit: {
      const auto& n = static_cast<const IntLit&>(e);
      os << n.value();
      if (n.type().scalarKind() == Scalar::UInt) os << 'u';
      break;
    }
    case ExprKind::FloatLit: {
      const auto& n = static_cast<const FloatLit&>(e);
      std::ostringstream tmp;
      tmp << n.value();
      std::string s = tmp.str();
      // Ensure the literal reparses as float, not int.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      os << s << 'f';
      break;
    }
    case ExprKind::VarRef:
      os << static_cast<const VarRef&>(e).name();
      break;
    case ExprKind::Unary: {
      const auto& n = static_cast<const UnaryExpr&>(e);
      os << unaryOpName(n.op());
      emitParenExpr(os, n.operand());
      break;
    }
    case ExprKind::Binary: {
      const auto& n = static_cast<const BinaryExpr&>(e);
      emitParenExpr(os, n.lhs());
      os << ' ' << binaryOpName(n.op()) << ' ';
      emitParenExpr(os, n.rhs());
      break;
    }
    case ExprKind::Call: {
      const auto& n = static_cast<const CallExpr&>(e);
      os << n.callee() << '(';
      for (std::size_t i = 0; i < n.args().size(); ++i) {
        if (i > 0) os << ", ";
        emitExpr(os, *n.args()[i]);
      }
      os << ')';
      break;
    }
    case ExprKind::Index: {
      const auto& n = static_cast<const IndexExpr&>(e);
      emitParenExpr(os, n.base());
      os << '[';
      emitExpr(os, n.index());
      os << ']';
      break;
    }
    case ExprKind::Cast: {
      const auto& n = static_cast<const CastExpr&>(e);
      os << '(' << n.type().toString() << ')';
      emitParenExpr(os, n.value());
      break;
    }
    case ExprKind::Select: {
      const auto& n = static_cast<const SelectExpr&>(e);
      emitParenExpr(os, n.cond());
      os << " ? ";
      emitParenExpr(os, n.ifTrue());
      os << " : ";
      emitParenExpr(os, n.ifFalse());
      break;
    }
  }
}

void emitStmt(std::ostream& os, const Stmt& s, int indent);

void emitIndent(std::ostream& os, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
}

void emitBlockOrStmt(std::ostream& os, const Stmt& s, int indent) {
  if (s.kind() == StmtKind::Compound) {
    emitStmt(os, s, indent);
  } else {
    // Wrap single statements in braces so reparse is unambiguous.
    emitIndent(os, indent);
    os << "{\n";
    emitStmt(os, s, indent + 1);
    emitIndent(os, indent);
    os << "}\n";
  }
}

void emitStmt(std::ostream& os, const Stmt& s, int indent) {
  switch (s.kind()) {
    case StmtKind::Decl: {
      const auto& n = static_cast<const DeclStmt&>(s);
      emitIndent(os, indent);
      if (n.arraySize() > 0) {
        os << n.declType().element().toString() << ' ' << n.name() << '['
           << n.arraySize() << "];\n";
      } else {
        os << n.declType().toString() << ' ' << n.name();
        if (n.init() != nullptr) {
          os << " = ";
          emitExpr(os, *n.init());
        }
        os << ";\n";
      }
      break;
    }
    case StmtKind::Assign: {
      const auto& n = static_cast<const AssignStmt&>(s);
      emitIndent(os, indent);
      emitExpr(os, n.target());
      os << " = ";
      emitExpr(os, n.value());
      os << ";\n";
      break;
    }
    case StmtKind::ExprEval: {
      const auto& n = static_cast<const ExprStmt&>(s);
      emitIndent(os, indent);
      emitExpr(os, n.expr());
      os << ";\n";
      break;
    }
    case StmtKind::Compound: {
      const auto& n = static_cast<const CompoundStmt&>(s);
      emitIndent(os, indent);
      os << "{\n";
      for (const auto& st : n.stmts()) emitStmt(os, *st, indent + 1);
      emitIndent(os, indent);
      os << "}\n";
      break;
    }
    case StmtKind::If: {
      const auto& n = static_cast<const IfStmt&>(s);
      emitIndent(os, indent);
      os << "if (";
      emitExpr(os, n.cond());
      os << ")\n";
      emitBlockOrStmt(os, n.thenBody(), indent);
      if (n.elseBody() != nullptr) {
        emitIndent(os, indent);
        os << "else\n";
        emitBlockOrStmt(os, *n.elseBody(), indent);
      }
      break;
    }
    case StmtKind::For: {
      const auto& n = static_cast<const ForStmt&>(s);
      emitIndent(os, indent);
      os << "for (int " << n.var() << " = ";
      emitExpr(os, n.init());
      os << "; " << n.var() << " < ";
      emitExpr(os, n.bound());
      os << "; " << n.var() << " += " << n.step() << ")\n";
      emitBlockOrStmt(os, n.body(), indent);
      break;
    }
    case StmtKind::While: {
      const auto& n = static_cast<const WhileStmt&>(s);
      emitIndent(os, indent);
      os << "while (";
      emitExpr(os, n.cond());
      os << ")\n";
      emitBlockOrStmt(os, n.body(), indent);
      break;
    }
    case StmtKind::Barrier:
      emitIndent(os, indent);
      os << "barrier(CLK_LOCAL_MEM_FENCE);\n";
      break;
    case StmtKind::Return: {
      const auto& n = static_cast<const ReturnStmt&>(s);
      emitIndent(os, indent);
      os << "return";
      if (n.value() != nullptr) {
        os << ' ';
        emitExpr(os, *n.value());
      }
      os << ";\n";
      break;
    }
    case StmtKind::Break:
      emitIndent(os, indent);
      os << "break;\n";
      break;
    case StmtKind::Continue:
      emitIndent(os, indent);
      os << "continue;\n";
      break;
  }
}

}  // namespace

std::string printExpr(const Expr& e) {
  std::ostringstream os;
  emitExpr(os, e);
  return os.str();
}

std::string printStmt(const Stmt& s, int indent) {
  std::ostringstream os;
  emitStmt(os, s, indent);
  return os.str();
}

std::string printKernel(const KernelDecl& k) {
  std::ostringstream os;
  os << "__kernel void " << k.name() << "(";
  for (std::size_t i = 0; i < k.params().size(); ++i) {
    if (i > 0) os << ", ";
    const auto& p = k.params()[i];
    os << p.type.toString() << ' ' << p.name;
  }
  os << ")\n";
  emitStmt(os, k.body(), 0);
  return os.str();
}

std::string printProgram(const Program& p) {
  std::string out;
  for (const auto& k : p.kernels()) {
    out += printKernel(*k);
    out += "\n";
  }
  return out;
}

}  // namespace tp::ir
