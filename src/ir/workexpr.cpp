#include "ir/workexpr.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/str.hpp"

namespace tp::ir {

namespace {
constexpr double kEps = 1e-12;
}

WorkExpr WorkExpr::constant(double c) {
  WorkExpr e;
  e.add({}, c);
  return e;
}

WorkExpr WorkExpr::variable(const std::string& name) {
  TP_ASSERT(!name.empty());
  WorkExpr e;
  e.add({name}, 1.0);
  return e;
}

bool WorkExpr::isConstant() const noexcept {
  return terms_.empty() || (terms_.size() == 1 && terms_.begin()->first.empty());
}

double WorkExpr::constantTerm() const {
  const auto it = terms_.find({});
  return it == terms_.end() ? 0.0 : it->second;
}

void WorkExpr::add(const Monomial& m, double coeff) {
  if (std::fabs(coeff) < kEps) return;
  const auto [it, inserted] = terms_.emplace(m, coeff);
  if (!inserted) {
    it->second += coeff;
    if (std::fabs(it->second) < kEps) terms_.erase(it);
  }
}

WorkExpr WorkExpr::operator+(const WorkExpr& o) const {
  WorkExpr out = *this;
  out += o;
  return out;
}

WorkExpr& WorkExpr::operator+=(const WorkExpr& o) {
  for (const auto& [m, c] : o.terms_) add(m, c);
  return *this;
}

WorkExpr WorkExpr::operator-(const WorkExpr& o) const {
  WorkExpr out = *this;
  for (const auto& [m, c] : o.terms_) out.add(m, -c);
  return out;
}

WorkExpr WorkExpr::operator*(const WorkExpr& o) const {
  WorkExpr out;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : o.terms_) {
      Monomial m = ma;
      m.insert(m.end(), mb.begin(), mb.end());
      std::sort(m.begin(), m.end());
      out.add(m, ca * cb);
    }
  }
  return out;
}

WorkExpr WorkExpr::operator*(double scale) const {
  WorkExpr out;
  for (const auto& [m, c] : terms_) out.add(m, c * scale);
  return out;
}

double WorkExpr::eval(const std::map<std::string, double>& bindings,
                      double defaultValue) const {
  double total = 0.0;
  for (const auto& [m, c] : terms_) {
    double term = c;
    for (const auto& var : m) {
      const auto it = bindings.find(var);
      term *= (it == bindings.end()) ? defaultValue : it->second;
    }
    total += term;
  }
  return total;
}

std::vector<std::string> WorkExpr::parameters() const {
  std::vector<std::string> out;
  for (const auto& [m, c] : terms_) {
    (void)c;
    for (const auto& var : m) {
      if (std::find(out.begin(), out.end(), var) == out.end()) {
        out.push_back(var);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int WorkExpr::degreeIn(const std::string& var) const {
  int deg = 0;
  for (const auto& [m, c] : terms_) {
    (void)c;
    deg = std::max(deg, static_cast<int>(std::count(m.begin(), m.end(), var)));
  }
  return deg;
}

WorkExpr WorkExpr::coefficientOf(const std::string& var) const {
  WorkExpr out;
  for (const auto& [m, c] : terms_) {
    const auto occurrences = std::count(m.begin(), m.end(), var);
    if (occurrences != 1) continue;
    Monomial reduced;
    bool removed = false;
    for (const auto& v : m) {
      if (!removed && v == var) {
        removed = true;
        continue;
      }
      reduced.push_back(v);
    }
    out.add(reduced, c);
  }
  return out;
}

WorkExpr WorkExpr::without(const std::string& var) const {
  WorkExpr out;
  for (const auto& [m, c] : terms_) {
    if (std::count(m.begin(), m.end(), var) == 0) out.add(m, c);
  }
  return out;
}

bool WorkExpr::contains(const std::string& var) const {
  for (const auto& [m, c] : terms_) {
    (void)c;
    if (std::count(m.begin(), m.end(), var) != 0) return true;
  }
  return false;
}

int WorkExpr::degree() const {
  int deg = 0;
  for (const auto& [m, c] : terms_) {
    (void)c;
    deg = std::max(deg, static_cast<int>(m.size()));
  }
  return deg;
}

std::string WorkExpr::toString() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& [m, c] : terms_) {
    if (!first) os << " + ";
    first = false;
    if (m.empty()) {
      os << common::formatDouble(c);
      continue;
    }
    if (c != 1.0) os << common::formatDouble(c) << "*";
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (i > 0) os << "*";
      os << m[i];
    }
  }
  return os.str();
}

}  // namespace tp::ir
