#pragma once

// Symbolic work expressions.
//
// Static feature extraction produces per-work-item operation counts that may
// depend on problem-size parameters (e.g. matmul executes 2*K fused
// multiply-adds per work item, where K is a kernel argument). We represent
// such counts as multivariate polynomials with double coefficients over
// named parameters. At launch time the runtime binds the parameters to the
// actual problem size, turning the static feature into a problem-size
// dependent *runtime feature* — exactly the static/dynamic feature split the
// paper describes.

#include <map>
#include <string>
#include <vector>

namespace tp::ir {

/// Sorted list of variable names (repetition encodes powers): {"K","K"} = K^2.
using Monomial = std::vector<std::string>;

class WorkExpr {
public:
  WorkExpr() = default;

  static WorkExpr constant(double c);
  static WorkExpr variable(const std::string& name);

  bool isZero() const noexcept { return terms_.empty(); }
  bool isConstant() const noexcept;
  /// Constant term (0 if absent).
  double constantTerm() const;

  WorkExpr operator+(const WorkExpr& o) const;
  WorkExpr operator-(const WorkExpr& o) const;
  WorkExpr operator*(const WorkExpr& o) const;
  WorkExpr operator*(double scale) const;
  WorkExpr& operator+=(const WorkExpr& o);

  bool operator==(const WorkExpr& o) const { return terms_ == o.terms_; }

  /// Evaluate with parameter bindings. Unknown parameters fall back to
  /// `defaultValue` (used for loops whose bounds are not size parameters).
  double eval(const std::map<std::string, double>& bindings,
              double defaultValue = 16.0) const;

  /// Names of all parameters appearing in the polynomial.
  std::vector<std::string> parameters() const;

  /// Highest total degree of any monomial (0 for constants).
  int degree() const;

  /// Highest power of `var` in any monomial.
  int degreeIn(const std::string& var) const;

  /// For polynomials linear in `var`: the coefficient polynomial (sum of all
  /// terms containing `var` exactly once, with that occurrence removed).
  WorkExpr coefficientOf(const std::string& var) const;

  /// Sum of all terms NOT containing `var`.
  WorkExpr without(const std::string& var) const;

  /// True if any monomial mentions `var`.
  bool contains(const std::string& var) const;

  /// Human-readable form, e.g. "2*K + 3" (deterministic term order).
  std::string toString() const;

private:
  void add(const Monomial& m, double coeff);

  // Canonical map from sorted monomial to coefficient; zero coefficients are
  // pruned eagerly so isZero()/operator== behave structurally.
  std::map<Monomial, double> terms_;
};

inline WorkExpr operator*(double scale, const WorkExpr& e) { return e * scale; }

}  // namespace tp::ir
