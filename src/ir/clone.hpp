#pragma once

// Deep copy of expression trees. The parser uses this to desugar compound
// assignments (a[i] += x  →  a[i] = a[i] + x) without re-parsing.

#include "ir/node.hpp"

namespace tp::ir {

ExprPtr cloneExpr(const Expr& e);

}  // namespace tp::ir
