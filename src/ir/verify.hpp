#pragma once

// Structural verifier for kernels: name resolution (every VarRef binds to a
// parameter, local declaration, or loop variable), pointer discipline
// (pointers are only indexed or passed whole, never mixed into arithmetic)
// and assignment-target validity. Returns the list of problems found; an
// empty list means the kernel is well-formed. The frontend always produces
// well-formed kernels (asserted in tests); the verifier exists so that
// programmatically-built IR gets the same guarantees.

#include <string>
#include <vector>

#include "ir/node.hpp"

namespace tp::ir {

std::vector<std::string> verifyKernel(const KernelDecl& kernel);

/// Convenience: throws tp::Error listing all problems if any.
void verifyKernelOrThrow(const KernelDecl& kernel);

}  // namespace tp::ir
