#pragma once

// Types for the INSPIRE-lite kernel IR.
//
// The frontend (src/frontend) accepts an OpenCL-C subset; its type system is
// deliberately small: scalar bool/int/uint/float plus pointers into one of
// the OpenCL address spaces. This is rich enough to express every kernel in
// the 23-program suite while keeping analysis (feature extraction, buffer
// access classification) simple.

#include <string>

namespace tp::ir {

enum class Scalar { Void, Bool, Int, UInt, Float };

enum class AddrSpace { None, Global, Local, Private };

/// Value type: either a scalar or a pointer-to-scalar in an address space.
class Type {
public:
  Type() = default;

  static Type scalar(Scalar s) { return Type(s, false, AddrSpace::None); }
  static Type voidTy() { return scalar(Scalar::Void); }
  static Type boolTy() { return scalar(Scalar::Bool); }
  static Type intTy() { return scalar(Scalar::Int); }
  static Type uintTy() { return scalar(Scalar::UInt); }
  static Type floatTy() { return scalar(Scalar::Float); }
  static Type pointer(Scalar elem, AddrSpace space) {
    return Type(elem, true, space);
  }

  Scalar scalarKind() const noexcept { return scalar_; }
  bool isPointer() const noexcept { return pointer_; }
  AddrSpace addrSpace() const noexcept { return space_; }

  bool isVoid() const noexcept { return !pointer_ && scalar_ == Scalar::Void; }
  bool isFloat() const noexcept { return !pointer_ && scalar_ == Scalar::Float; }
  bool isIntegral() const noexcept {
    return !pointer_ && (scalar_ == Scalar::Int || scalar_ == Scalar::UInt ||
                         scalar_ == Scalar::Bool);
  }
  bool isArithmetic() const noexcept { return isFloat() || isIntegral(); }

  /// Element type of a pointer.
  Type element() const { return scalar(scalar_); }

  bool operator==(const Type& o) const noexcept {
    return scalar_ == o.scalar_ && pointer_ == o.pointer_ && space_ == o.space_;
  }
  bool operator!=(const Type& o) const noexcept { return !(*this == o); }

  std::string toString() const;

  /// Size of one element in bytes (pointers report their element size).
  int elementBytes() const noexcept;

private:
  Type(Scalar s, bool ptr, AddrSpace space)
      : scalar_(s), pointer_(ptr), space_(space) {}

  Scalar scalar_ = Scalar::Void;
  bool pointer_ = false;
  AddrSpace space_ = AddrSpace::None;
};

const char* scalarName(Scalar s);
const char* addrSpaceName(AddrSpace s);

}  // namespace tp::ir
