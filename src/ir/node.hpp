#pragma once

// Expression and statement nodes of the INSPIRE-lite IR.
//
// Ownership: every node owns its children through std::unique_ptr. Nodes are
// immutable after construction (analyses never mutate the tree). Traversal
// is via ir::Visitor (visitor.hpp) or direct kind() dispatch.

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ir/type.hpp"

namespace tp::ir {

class Visitor;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit,
  FloatLit,
  VarRef,
  Unary,
  Binary,
  Call,
  Index,
  Cast,
  Select,
};

enum class UnaryOp { Neg, Not };

enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  LogicalAnd, LogicalOr,
  BitAnd, BitOr, BitXor, Shl, Shr,
};

const char* unaryOpName(UnaryOp op);
const char* binaryOpName(BinaryOp op);
bool isComparison(BinaryOp op);
bool isLogical(BinaryOp op);

class Expr {
public:
  virtual ~Expr() = default;
  ExprKind kind() const noexcept { return kind_; }
  const Type& type() const noexcept { return type_; }
  virtual void accept(Visitor& v) const = 0;

protected:
  Expr(ExprKind kind, Type type) : kind_(kind), type_(type) {}

private:
  ExprKind kind_;
  Type type_;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLit final : public Expr {
public:
  IntLit(long long value, Type type = Type::intTy())
      : Expr(ExprKind::IntLit, type), value_(value) {}
  long long value() const noexcept { return value_; }
  void accept(Visitor& v) const override;

private:
  long long value_;
};

class FloatLit final : public Expr {
public:
  explicit FloatLit(double value)
      : Expr(ExprKind::FloatLit, Type::floatTy()), value_(value) {}
  double value() const noexcept { return value_; }
  void accept(Visitor& v) const override;

private:
  double value_;
};

class VarRef final : public Expr {
public:
  VarRef(std::string name, Type type)
      : Expr(ExprKind::VarRef, type), name_(std::move(name)) {}
  const std::string& name() const noexcept { return name_; }
  void accept(Visitor& v) const override;

private:
  std::string name_;
};

class UnaryExpr final : public Expr {
public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::Unary, operand->type()),
        op_(op),
        operand_(std::move(operand)) {}
  UnaryOp op() const noexcept { return op_; }
  const Expr& operand() const noexcept { return *operand_; }
  void accept(Visitor& v) const override;

private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs, Type type)
      : Expr(ExprKind::Binary, type),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}
  BinaryOp op() const noexcept { return op_; }
  const Expr& lhs() const noexcept { return *lhs_; }
  const Expr& rhs() const noexcept { return *rhs_; }
  void accept(Visitor& v) const override;

private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Builtin call: work-item queries (get_global_id, ...) and math builtins
/// (sqrt, exp, ...). The frontend resolves callee names against the builtin
/// table in frontend/builtins.hpp.
class CallExpr final : public Expr {
public:
  CallExpr(std::string callee, std::vector<ExprPtr> args, Type type)
      : Expr(ExprKind::Call, type),
        callee_(std::move(callee)),
        args_(std::move(args)) {}
  const std::string& callee() const noexcept { return callee_; }
  const std::vector<ExprPtr>& args() const noexcept { return args_; }
  void accept(Visitor& v) const override;

private:
  std::string callee_;
  std::vector<ExprPtr> args_;
};

/// base[index] — a load when used as an rvalue, a store target in AssignStmt.
class IndexExpr final : public Expr {
public:
  IndexExpr(ExprPtr base, ExprPtr index)
      : Expr(ExprKind::Index, base->type().element()),
        base_(std::move(base)),
        index_(std::move(index)) {
    TP_ASSERT(base_->type().isPointer());
  }
  const Expr& base() const noexcept { return *base_; }
  const Expr& index() const noexcept { return *index_; }
  /// Address space of the accessed memory.
  AddrSpace addrSpace() const noexcept { return base_->type().addrSpace(); }
  void accept(Visitor& v) const override;

private:
  ExprPtr base_;
  ExprPtr index_;
};

class CastExpr final : public Expr {
public:
  CastExpr(Type to, ExprPtr value)
      : Expr(ExprKind::Cast, to), value_(std::move(value)) {}
  const Expr& value() const noexcept { return *value_; }
  void accept(Visitor& v) const override;

private:
  ExprPtr value_;
};

/// cond ? ifTrue : ifFalse
class SelectExpr final : public Expr {
public:
  SelectExpr(ExprPtr cond, ExprPtr ifTrue, ExprPtr ifFalse)
      : Expr(ExprKind::Select, ifTrue->type()),
        cond_(std::move(cond)),
        ifTrue_(std::move(ifTrue)),
        ifFalse_(std::move(ifFalse)) {}
  const Expr& cond() const noexcept { return *cond_; }
  const Expr& ifTrue() const noexcept { return *ifTrue_; }
  const Expr& ifFalse() const noexcept { return *ifFalse_; }
  void accept(Visitor& v) const override;

private:
  ExprPtr cond_;
  ExprPtr ifTrue_;
  ExprPtr ifFalse_;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  Decl,
  Assign,
  ExprEval,
  Compound,
  If,
  For,
  While,
  Barrier,
  Return,
  Break,
  Continue,
};

class Stmt {
public:
  virtual ~Stmt() = default;
  StmtKind kind() const noexcept { return kind_; }
  virtual void accept(Visitor& v) const = 0;

protected:
  explicit Stmt(StmtKind kind) : kind_(kind) {}

private:
  StmtKind kind_;
};

using StmtPtr = std::unique_ptr<Stmt>;

class DeclStmt final : public Stmt {
public:
  DeclStmt(std::string name, Type type, ExprPtr init /*may be null*/)
      : Stmt(StmtKind::Decl),
        name_(std::move(name)),
        type_(type),
        init_(std::move(init)) {}
  const std::string& name() const noexcept { return name_; }
  const Type& declType() const noexcept { return type_; }
  const Expr* init() const noexcept { return init_.get(); }
  /// For __private array declarations: number of elements (0 = scalar var).
  long long arraySize() const noexcept { return arraySize_; }
  void setArraySize(long long n) noexcept { arraySize_ = n; }
  void accept(Visitor& v) const override;

private:
  std::string name_;
  Type type_;
  ExprPtr init_;
  long long arraySize_ = 0;
};

/// target = value. target is a VarRef or IndexExpr (verified).
class AssignStmt final : public Stmt {
public:
  AssignStmt(ExprPtr target, ExprPtr value)
      : Stmt(StmtKind::Assign),
        target_(std::move(target)),
        value_(std::move(value)) {
    TP_ASSERT(target_->kind() == ExprKind::VarRef ||
              target_->kind() == ExprKind::Index);
  }
  const Expr& target() const noexcept { return *target_; }
  const Expr& value() const noexcept { return *value_; }
  void accept(Visitor& v) const override;

private:
  ExprPtr target_;
  ExprPtr value_;
};

class ExprStmt final : public Stmt {
public:
  explicit ExprStmt(ExprPtr expr)
      : Stmt(StmtKind::ExprEval), expr_(std::move(expr)) {}
  const Expr& expr() const noexcept { return *expr_; }
  void accept(Visitor& v) const override;

private:
  ExprPtr expr_;
};

class CompoundStmt final : public Stmt {
public:
  explicit CompoundStmt(std::vector<StmtPtr> stmts = {})
      : Stmt(StmtKind::Compound), stmts_(std::move(stmts)) {}
  const std::vector<StmtPtr>& stmts() const noexcept { return stmts_; }
  void append(StmtPtr s) { stmts_.push_back(std::move(s)); }
  void accept(Visitor& v) const override;

private:
  std::vector<StmtPtr> stmts_;
};

class IfStmt final : public Stmt {
public:
  IfStmt(ExprPtr cond, StmtPtr thenBody, StmtPtr elseBody /*may be null*/)
      : Stmt(StmtKind::If),
        cond_(std::move(cond)),
        then_(std::move(thenBody)),
        else_(std::move(elseBody)) {}
  const Expr& cond() const noexcept { return *cond_; }
  const Stmt& thenBody() const noexcept { return *then_; }
  const Stmt* elseBody() const noexcept { return else_.get(); }
  void accept(Visitor& v) const override;

private:
  ExprPtr cond_;
  StmtPtr then_;
  StmtPtr else_;
};

/// Canonical counted loop: for (int var = init; var < bound; var += step).
/// The frontend only produces ForStmt for loops matching this shape, which
/// lets feature extraction derive a symbolic trip count
/// ceil((bound - init) / step); everything else becomes WhileStmt.
class ForStmt final : public Stmt {
public:
  ForStmt(std::string var, ExprPtr init, ExprPtr bound, long long step,
          StmtPtr body)
      : Stmt(StmtKind::For),
        var_(std::move(var)),
        init_(std::move(init)),
        bound_(std::move(bound)),
        step_(step),
        body_(std::move(body)) {
    TP_ASSERT(step_ > 0);
  }
  const std::string& var() const noexcept { return var_; }
  const Expr& init() const noexcept { return *init_; }
  const Expr& bound() const noexcept { return *bound_; }
  long long step() const noexcept { return step_; }
  const Stmt& body() const noexcept { return *body_; }
  void accept(Visitor& v) const override;

private:
  std::string var_;
  ExprPtr init_;
  ExprPtr bound_;
  long long step_;
  StmtPtr body_;
};

class WhileStmt final : public Stmt {
public:
  WhileStmt(ExprPtr cond, StmtPtr body)
      : Stmt(StmtKind::While), cond_(std::move(cond)), body_(std::move(body)) {}
  const Expr& cond() const noexcept { return *cond_; }
  const Stmt& body() const noexcept { return *body_; }
  void accept(Visitor& v) const override;

private:
  ExprPtr cond_;
  StmtPtr body_;
};

/// barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE)
class BarrierStmt final : public Stmt {
public:
  BarrierStmt() : Stmt(StmtKind::Barrier) {}
  void accept(Visitor& v) const override;
};

class ReturnStmt final : public Stmt {
public:
  explicit ReturnStmt(ExprPtr value /*may be null*/)
      : Stmt(StmtKind::Return), value_(std::move(value)) {}
  const Expr* value() const noexcept { return value_.get(); }
  void accept(Visitor& v) const override;

private:
  ExprPtr value_;
};

class BreakStmt final : public Stmt {
public:
  BreakStmt() : Stmt(StmtKind::Break) {}
  void accept(Visitor& v) const override;
};

class ContinueStmt final : public Stmt {
public:
  ContinueStmt() : Stmt(StmtKind::Continue) {}
  void accept(Visitor& v) const override;
};

// ---------------------------------------------------------------------------
// Kernel and program
// ---------------------------------------------------------------------------

/// Formal parameter of a kernel. Pointer parameters in __global space are
/// the buffers the multi-device backend must distribute.
struct Param {
  std::string name;
  Type type;
};

class KernelDecl {
public:
  KernelDecl(std::string name, std::vector<Param> params,
             std::unique_ptr<CompoundStmt> body)
      : name_(std::move(name)),
        params_(std::move(params)),
        body_(std::move(body)) {}

  const std::string& name() const noexcept { return name_; }
  const std::vector<Param>& params() const noexcept { return params_; }
  const CompoundStmt& body() const noexcept { return *body_; }

  const Param* findParam(const std::string& name) const {
    for (const auto& p : params_) {
      if (p.name == name) return &p;
    }
    return nullptr;
  }

private:
  std::string name_;
  std::vector<Param> params_;
  std::unique_ptr<CompoundStmt> body_;
};

/// A translation unit: one or more kernels (the suite uses one per program).
class Program {
public:
  explicit Program(std::vector<std::unique_ptr<KernelDecl>> kernels)
      : kernels_(std::move(kernels)) {}

  const std::vector<std::unique_ptr<KernelDecl>>& kernels() const noexcept {
    return kernels_;
  }

  const KernelDecl* findKernel(const std::string& name) const {
    for (const auto& k : kernels_) {
      if (k->name() == name) return k.get();
    }
    return nullptr;
  }

private:
  std::vector<std::unique_ptr<KernelDecl>> kernels_;
};

}  // namespace tp::ir
