// Rodinia family: nn (nearest neighbor), hotspot, srad, pathfinder,
// bfs (frontier expansion), kmeans (assignment step).

#include <cmath>

#include "suite/benchmark.hpp"
#include "suite/suite_util.hpp"

namespace tp::suite {

using runtime::CompiledKernel;
using runtime::TaskBuilder;
using vcl::LaunchArgs;
using vcl::WorkGroupCtx;

namespace {

// ---------------------------------------------------------------------------
// nn — Euclidean distance to a target point (Rodinia NN).
// ---------------------------------------------------------------------------

Benchmark makeNn() {
  const char* src = R"(
__kernel void nn(__global const float* lat, __global const float* lng,
                 __global float* dist, float tlat, float tlng, int n) {
  int i = get_global_id(0);
  if (i < n) {
    float dlat = lat[i] - tlat;
    float dlng = lng[i] - tlng;
    dist[i] = sqrt(dlat * dlat + dlng * dlng);
  }
}
)";
  Benchmark bench{"nn", "rodinia", CompiledKernel::compile(src),
                  {1u << 14, 1u << 16, 1u << 18, 1u << 20, 1u << 21, 1u << 22},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("nn", n));
    auto lat = randomFloatBuffer(n, rng, -90.0f, 90.0f);
    auto lng = randomFloatBuffer(n, rng, -180.0f, 180.0f);
    auto dist = zeroFloatBuffer(n);
    const float tlat = 30.0f, tlng = -40.0f;
    const auto lat0 = lat->toVector<float>();
    const auto lng0 = lng->toVector<float>();

    BenchmarkInstance inst;
    inst.task = TaskBuilder(compiled, "nn")
                    .global(n)
                    .local(64)
                    .arg(lat)
                    .arg(lng)
                    .arg(dist)
                    .arg(tlat)
                    .arg(tlng)
                    .arg(static_cast<int>(n))
                    .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
                      auto lat = args.view<float>(0);
                      auto lng = args.view<float>(1);
                      auto dist = args.view<float>(2);
                      const float tlat = args.scalarFloat(3);
                      const float tlng = args.scalarFloat(4);
                      const int n = args.scalarInt(5);
                      for (std::size_t l = 0; l < wg.localSize; ++l) {
                        const std::size_t i = wg.globalId(l);
                        if (static_cast<int>(i) >= n) continue;
                        const float dlat = lat[i] - tlat;
                        const float dlng = lng[i] - tlng;
                        dist[i] = std::sqrt(dlat * dlat + dlng * dlng);
                      }
                    })
                    .build();
    inst.verify = [dist, lat0, lng0, tlat, tlng](std::string* error) {
      std::vector<float> expected(lat0.size());
      for (std::size_t i = 0; i < lat0.size(); ++i) {
        const float dlat = lat0[i] - tlat;
        const float dlng = lng0[i] - tlng;
        expected[i] = std::sqrt(dlat * dlat + dlng * dlng);
      }
      return verifyFloat(*dist, expected, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// hotspot — thermal simulation step (Rodinia HotSpot).
// ---------------------------------------------------------------------------

Benchmark makeHotspot() {
  const char* src = R"(
__kernel void hotspot(__global const float* temp, __global const float* power,
                      __global float* out, int width, int height,
                      float cap, float rx, float ry, float rz, float amb) {
  int idx = get_global_id(0);
  int x = idx % width;
  int y = idx / width;
  float t = temp[idx];
  float tn = t;
  float ts = t;
  float te = t;
  float tw = t;
  if (y > 0) {
    tn = temp[idx - width];
  }
  if (y < height - 1) {
    ts = temp[idx + width];
  }
  if (x > 0) {
    tw = temp[idx - 1];
  }
  if (x < width - 1) {
    te = temp[idx + 1];
  }
  float delta = (power[idx] + (tn + ts - 2.0f * t) / ry
               + (te + tw - 2.0f * t) / rx + (amb - t) / rz) / cap;
  out[idx] = t + delta;
}
)";
  Benchmark bench{"hotspot", "rodinia", CompiledKernel::compile(src),
                  {128, 256, 384, 512, 768, 1024},  // grid edge
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t edge) {
    const std::size_t n = edge * edge;
    common::Rng rng(instanceSeed("hotspot", edge));
    auto temp = randomFloatBuffer(n, rng, 320.0f, 340.0f);
    auto power = randomFloatBuffer(n, rng, 0.0f, 1.0f);
    auto out = zeroFloatBuffer(n);
    const float cap = 0.5f, rx = 1.0f, ry = 1.0f, rz = 4.0f, amb = 300.0f;
    const auto t0 = temp->toVector<float>();
    const auto p0 = power->toVector<float>();

    auto updateAt = [](const std::vector<float>& temp,
                       const std::vector<float>& power, std::size_t idx,
                       std::size_t width, std::size_t height, float cap,
                       float rx, float ry, float rz, float amb) {
      const std::size_t x = idx % width;
      const std::size_t y = idx / width;
      const float t = temp[idx];
      const float tn = y > 0 ? temp[idx - width] : t;
      const float ts = y < height - 1 ? temp[idx + width] : t;
      const float tw = x > 0 ? temp[idx - 1] : t;
      const float te = x < width - 1 ? temp[idx + 1] : t;
      const float delta = (power[idx] + (tn + ts - 2.0f * t) / ry +
                           (te + tw - 2.0f * t) / rx + (amb - t) / rz) /
                          cap;
      return t + delta;
    };

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "hotspot")
            .global(n)
            .local(64)
            .arg(temp)
            .arg(power)
            .arg(out)
            .arg(static_cast<int>(edge))
            .arg(static_cast<int>(edge))
            .arg(cap)
            .arg(rx)
            .arg(ry)
            .arg(rz)
            .arg(amb)
            .transferAmortization(50.0)  // thermal simulation steps
            .native([updateAt](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto temp = args.view<float>(0);
              auto power = args.view<float>(1);
              auto out = args.view<float>(2);
              const auto width = static_cast<std::size_t>(args.scalarInt(3));
              const auto height = static_cast<std::size_t>(args.scalarInt(4));
              const float cap = args.scalarFloat(5);
              const float rx = args.scalarFloat(6);
              const float ry = args.scalarFloat(7);
              const float rz = args.scalarFloat(8);
              const float amb = args.scalarFloat(9);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t idx = wg.globalId(l);
                const std::size_t x = idx % width;
                const std::size_t y = idx / width;
                const float t = temp[idx];
                const float tn = y > 0 ? temp[idx - width] : t;
                const float ts = y < height - 1 ? temp[idx + width] : t;
                const float tw = x > 0 ? temp[idx - 1] : t;
                const float te = x < width - 1 ? temp[idx + 1] : t;
                const float delta =
                    (power[idx] + (tn + ts - 2.0f * t) / ry +
                     (te + tw - 2.0f * t) / rx + (amb - t) / rz) /
                    cap;
                out[idx] = t + delta;
              }
            })
            .build();
    inst.verify = [out, t0, p0, edge, cap, rx, ry, rz, amb,
                   updateAt](std::string* error) {
      const std::size_t n = edge * edge;
      std::vector<float> expected(n);
      for (std::size_t idx = 0; idx < n; ++idx) {
        expected[idx] = updateAt(t0, p0, idx, edge, edge, cap, rx, ry, rz, amb);
      }
      return verifyFloat(*out, expected, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// srad — speckle-reducing anisotropic diffusion step (Rodinia SRAD).
// ---------------------------------------------------------------------------

Benchmark makeSrad() {
  const char* src = R"(
__kernel void srad(__global const float* img, __global float* out,
                   int width, int height, float lambda, float q0) {
  int idx = get_global_id(0);
  int x = idx % width;
  int y = idx / width;
  float jc = img[idx];
  float jn = jc;
  float js = jc;
  float jw = jc;
  float je = jc;
  if (y > 0) {
    jn = img[idx - width];
  }
  if (y < height - 1) {
    js = img[idx + width];
  }
  if (x > 0) {
    jw = img[idx - 1];
  }
  if (x < width - 1) {
    je = img[idx + 1];
  }
  float dN = jn - jc;
  float dS = js - jc;
  float dW = jw - jc;
  float dE = je - jc;
  float g2 = (dN * dN + dS * dS + dW * dW + dE * dE) / (jc * jc + 0.0001f);
  float lsum = (dN + dS + dW + dE) / (jc + 0.0001f);
  float num = 0.5f * g2 - 0.0625f * lsum * lsum;
  float den = 1.0f + 0.25f * lsum;
  float qsq = num / (den * den + 0.0001f);
  float c = exp(0.0f - (qsq - q0) / (q0 + 0.0001f));
  if (c < 0.0f) {
    c = 0.0f;
  }
  if (c > 1.0f) {
    c = 1.0f;
  }
  out[idx] = jc + lambda * 0.25f * c * (dN + dS + dW + dE);
}
)";
  Benchmark bench{"srad", "rodinia", CompiledKernel::compile(src),
                  {128, 256, 384, 512, 768, 1024},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t edge) {
    const std::size_t n = edge * edge;
    common::Rng rng(instanceSeed("srad", edge));
    auto img = randomFloatBuffer(n, rng, 0.05f, 1.0f);
    auto out = zeroFloatBuffer(n);
    const float lambda = 0.5f, q0 = 0.2f;
    const auto i0 = img->toVector<float>();

    auto sradAt = [](const std::vector<float>& img, std::size_t idx,
                     std::size_t width, std::size_t height, float lambda,
                     float q0) {
      const std::size_t x = idx % width;
      const std::size_t y = idx / width;
      const float jc = img[idx];
      const float jn = y > 0 ? img[idx - width] : jc;
      const float js = y < height - 1 ? img[idx + width] : jc;
      const float jw = x > 0 ? img[idx - 1] : jc;
      const float je = x < width - 1 ? img[idx + 1] : jc;
      const float dN = jn - jc, dS = js - jc, dW = jw - jc, dE = je - jc;
      const float g2 =
          (dN * dN + dS * dS + dW * dW + dE * dE) / (jc * jc + 0.0001f);
      const float lsum = (dN + dS + dW + dE) / (jc + 0.0001f);
      const float num = 0.5f * g2 - 0.0625f * lsum * lsum;
      const float den = 1.0f + 0.25f * lsum;
      const float qsq = num / (den * den + 0.0001f);
      float c = std::exp(0.0f - (qsq - q0) / (q0 + 0.0001f));
      if (c < 0.0f) c = 0.0f;
      if (c > 1.0f) c = 1.0f;
      return jc + lambda * 0.25f * c * (dN + dS + dW + dE);
    };

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "srad")
            .global(n)
            .local(64)
            .arg(img)
            .arg(out)
            .arg(static_cast<int>(edge))
            .arg(static_cast<int>(edge))
            .arg(lambda)
            .arg(q0)
            .transferAmortization(50.0)  // diffusion iterations
            .native([sradAt](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto img = args.view<float>(0);
              auto out = args.view<float>(1);
              const auto width = static_cast<std::size_t>(args.scalarInt(2));
              const auto height = static_cast<std::size_t>(args.scalarInt(3));
              const float lambda = args.scalarFloat(4);
              const float q0 = args.scalarFloat(5);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t idx = wg.globalId(l);
                const std::size_t x = idx % width;
                const std::size_t y = idx / width;
                const float jc = img[idx];
                const float jn = y > 0 ? img[idx - width] : jc;
                const float js = y < height - 1 ? img[idx + width] : jc;
                const float jw = x > 0 ? img[idx - 1] : jc;
                const float je = x < width - 1 ? img[idx + 1] : jc;
                const float dN = jn - jc, dS = js - jc, dW = jw - jc,
                            dE = je - jc;
                const float g2 = (dN * dN + dS * dS + dW * dW + dE * dE) /
                                 (jc * jc + 0.0001f);
                const float lsum = (dN + dS + dW + dE) / (jc + 0.0001f);
                const float num = 0.5f * g2 - 0.0625f * lsum * lsum;
                const float den = 1.0f + 0.25f * lsum;
                const float qsq = num / (den * den + 0.0001f);
                float c = std::exp(0.0f - (qsq - q0) / (q0 + 0.0001f));
                if (c < 0.0f) c = 0.0f;
                if (c > 1.0f) c = 1.0f;
                out[idx] = jc + lambda * 0.25f * c * (dN + dS + dW + dE);
              }
            })
            .build();
    inst.verify = [out, i0, edge, lambda, q0, sradAt](std::string* error) {
      const std::size_t n = edge * edge;
      std::vector<float> expected(n);
      for (std::size_t idx = 0; idx < n; ++idx) {
        expected[idx] = sradAt(i0, idx, edge, edge, lambda, q0);
      }
      return verifyFloat(*out, expected, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// pathfinder — one dynamic-programming row relaxation (Rodinia PathFinder).
// ---------------------------------------------------------------------------

Benchmark makePathfinder() {
  const char* src = R"(
__kernel void pathfinder(__global const int* wall, __global const int* src,
                         __global int* dst, int cols) {
  int x = get_global_id(0);
  int best = src[x];
  if (x > 0) {
    int left = src[x - 1];
    if (left < best) {
      best = left;
    }
  }
  if (x < cols - 1) {
    int right = src[x + 1];
    if (right < best) {
      best = right;
    }
  }
  dst[x] = wall[x] + best;
}
)";
  Benchmark bench{"pathfinder", "rodinia", CompiledKernel::compile(src),
                  {1u << 14, 1u << 16, 1u << 18, 1u << 20, 1u << 21, 1u << 22},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("pathfinder", n));
    auto wall = randomIntBuffer(n, rng, 0, 9);
    auto srcRow = randomIntBuffer(n, rng, 0, 100);
    auto dst = zeroIntBuffer(n);
    const auto w0 = wall->toVector<int>();
    const auto s0 = srcRow->toVector<int>();

    BenchmarkInstance inst;
    inst.task = TaskBuilder(compiled, "pathfinder")
                    .global(n)
                    .local(64)
                    .arg(wall)
                    .arg(srcRow)
                    .arg(dst)
                    .arg(static_cast<int>(n))
                    .transferAmortization(50.0)  // one launch per DP row
                    .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
                      auto wall = args.view<int>(0);
                      auto src = args.view<int>(1);
                      auto dst = args.view<int>(2);
                      const int cols = args.scalarInt(3);
                      for (std::size_t l = 0; l < wg.localSize; ++l) {
                        const std::size_t x = wg.globalId(l);
                        int best = src[x];
                        if (x > 0) best = std::min(best, src[x - 1]);
                        if (static_cast<int>(x) < cols - 1) {
                          best = std::min(best, src[x + 1]);
                        }
                        dst[x] = wall[x] + best;
                      }
                    })
                    .build();
    inst.verify = [dst, w0, s0](std::string* error) {
      const std::size_t n = w0.size();
      std::vector<int> expected(n);
      for (std::size_t x = 0; x < n; ++x) {
        int best = s0[x];
        if (x > 0) best = std::min(best, s0[x - 1]);
        if (x < n - 1) best = std::min(best, s0[x + 1]);
        expected[x] = w0[x] + best;
      }
      return verifyInt(*dst, expected, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// bfs — frontier expansion with atomic touch counting (Rodinia BFS step).
// ---------------------------------------------------------------------------

Benchmark makeBfs() {
  const char* src = R"(
__kernel void bfs(__global const int* rowptr, __global const int* cols,
                  __global const int* frontier, __global int* touched,
                  int n, int level) {
  int tid = get_global_id(0);
  if (tid < n) {
    if (frontier[tid] == level) {
      for (int e = rowptr[tid]; e < rowptr[tid + 1]; e++) {
        int nbr = cols[e];
        atomic_add(touched[nbr], 1);
      }
    }
  }
}
)";
  Benchmark bench{"bfs", "rodinia", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 19, 1u << 20},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("bfs", n));
    // Random graph, 1..8 out-edges per node; ~25% of nodes in the frontier.
    std::vector<int> rowptrV(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      rowptrV[v + 1] = rowptrV[v] + static_cast<int>(rng.range(1, 8));
    }
    const auto edges = static_cast<std::size_t>(rowptrV[n]);
    auto rowptr = std::make_shared<vcl::Buffer>(vcl::ElemKind::I32, n + 1);
    rowptr->fill(rowptrV);
    auto cols = randomIntBuffer(edges, rng, 0, static_cast<int>(n) - 1);
    auto frontier = randomIntBuffer(n, rng, 0, 3);  // level ∈ {0..3}
    auto touched = zeroIntBuffer(n);
    const int level = 1;
    const auto c0 = cols->toVector<int>();
    const auto f0 = frontier->toVector<int>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "bfs")
            .global(n)
            .local(64)
            .arg(rowptr)
            .arg(cols)
            .arg(frontier)
            .arg(touched)
            .arg(static_cast<int>(n))
            .arg(level)
            .bind(features::kUnknownTripParam, 4.0)  // mean out-degree
            .transferAmortization(4.0)  // one launch per BFS level
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto rowptr = args.view<int>(0);
              auto cols = args.view<int>(1);
              auto frontier = args.view<int>(2);
              auto touched = args.view<int>(3);
              const int n = args.scalarInt(4);
              const int level = args.scalarInt(5);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t tid = wg.globalId(l);
                if (static_cast<int>(tid) >= n) continue;
                if (frontier[tid] == level) {
                  for (int e = rowptr[tid]; e < rowptr[tid + 1]; ++e) {
                    const int nbr = cols[static_cast<std::size_t>(e)];
                    touched.atomicAdd(static_cast<std::size_t>(nbr), 1);
                  }
                }
              }
            })
            .build();
    inst.verify = [touched, rowptrV, c0, f0, level](std::string* error) {
      const std::size_t n = f0.size();
      std::vector<int> expected(n, 0);
      for (std::size_t v = 0; v < n; ++v) {
        if (f0[v] != level) continue;
        for (int e = rowptrV[v]; e < rowptrV[v + 1]; ++e) {
          ++expected[static_cast<std::size_t>(c0[static_cast<std::size_t>(e)])];
        }
      }
      return verifyInt(*touched, expected, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// kmeans — cluster assignment step (Rodinia K-means kernel_c).
// ---------------------------------------------------------------------------

Benchmark makeKmeans() {
  const char* src = R"(
__kernel void kmeans(__global const float* points,
                     __global const float* centroids,
                     __global int* assign, int n, int k, int dim) {
  int i = get_global_id(0);
  if (i < n) {
    int best = 0;
    float bestDist = 1.0e30f;
    for (int c = 0; c < k; c++) {
      float d = 0.0f;
      for (int j = 0; j < dim; j++) {
        float diff = points[i * dim + j] - centroids[c * dim + j];
        d += diff * diff;
      }
      if (d < bestDist) {
        bestDist = d;
        best = c;
      }
    }
    assign[i] = best;
  }
}
)";
  constexpr int kClusters = 16;
  constexpr int kDim = 4;
  Benchmark bench{"kmeans", "rodinia", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 19, 1u << 20},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("kmeans", n));
    auto points = randomFloatBuffer(n * kDim, rng);
    auto centroids = randomFloatBuffer(
        static_cast<std::size_t>(kClusters) * kDim, rng);
    auto assign = zeroIntBuffer(n);
    const auto p0 = points->toVector<float>();
    const auto ctr0 = centroids->toVector<float>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "kmeans")
            .global(n)
            .local(64)
            .arg(points)
            .arg(centroids)
            .arg(assign)
            .arg(static_cast<int>(n))
            .arg(kClusters)
            .arg(kDim)
            .transferAmortization(10.0)  // Lloyd iterations, points resident
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto points = args.view<float>(0);
              auto centroids = args.view<float>(1);
              auto assign = args.view<int>(2);
              const int n = args.scalarInt(3);
              const int k = args.scalarInt(4);
              const int dim = args.scalarInt(5);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t i = wg.globalId(l);
                if (static_cast<int>(i) >= n) continue;
                int best = 0;
                float bestDist = 1.0e30f;
                for (int c = 0; c < k; ++c) {
                  float d = 0.0f;
                  for (int j = 0; j < dim; ++j) {
                    const float diff =
                        points[i * static_cast<std::size_t>(dim) +
                               static_cast<std::size_t>(j)] -
                        centroids[static_cast<std::size_t>(c * dim + j)];
                    d += diff * diff;
                  }
                  if (d < bestDist) {
                    bestDist = d;
                    best = c;
                  }
                }
                assign[i] = best;
              }
            })
            .build();
    inst.verify = [assign, p0, ctr0](std::string* error) {
      const std::size_t n = p0.size() / kDim;
      std::vector<int> expected(n);
      for (std::size_t i = 0; i < n; ++i) {
        int best = 0;
        float bestDist = 1.0e30f;
        for (int c = 0; c < kClusters; ++c) {
          float d = 0.0f;
          for (int j = 0; j < kDim; ++j) {
            const float diff =
                p0[i * kDim + static_cast<std::size_t>(j)] -
                ctr0[static_cast<std::size_t>(c * kDim + j)];
            d += diff * diff;
          }
          if (d < bestDist) {
            bestDist = d;
            best = c;
          }
        }
        expected[i] = best;
      }
      return verifyInt(*assign, expected, error);
    };
    return inst;
  };
  return bench;
}

}  // namespace

std::vector<Benchmark> makeRodiniaBenchmarks() {
  std::vector<Benchmark> out;
  out.push_back(makeNn());
  out.push_back(makeHotspot());
  out.push_back(makeSrad());
  out.push_back(makePathfinder());
  out.push_back(makeBfs());
  out.push_back(makeKmeans());
  return out;
}

}  // namespace tp::suite
