#pragma once

// The 23-program evaluation suite (paper §3: programs drawn from OpenCL
// vendor samples, Rodinia [2], SHOC [3] and PolyBench-GPU [4] families).
//
// Every benchmark provides:
//   - the OpenCL-C-subset kernel source, compiled once through the full
//     pipeline (parse → verify → static features → access classification);
//   - a factory that, for a given problem size, allocates deterministic
//     input data and produces a ready-to-run Task plus a verifier;
//   - a ladder of problem sizes used by the training sweep (chosen to
//     straddle the CPU/GPU crossover on the simulated machines).
//
// Instances are single-use: execute the Task once (Compute mode), then call
// verify(); inputs are captured at creation for reference computation.

#include <functional>
#include <string>
#include <vector>

#include "runtime/compiler.hpp"
#include "runtime/task.hpp"

namespace tp::suite {

struct BenchmarkInstance {
  runtime::Task task;
  /// Checks device results against a scalar host reference; on failure
  /// returns false and describes the mismatch.
  std::function<bool(std::string* error)> verify;
};

struct Benchmark {
  std::string name;
  std::string family;  ///< "vendor", "rodinia", "shoc", "polybench"
  runtime::CompiledKernel compiled;
  std::vector<std::size_t> sizes;  ///< problem-size ladder
  std::function<BenchmarkInstance(std::size_t n)> make;

  const std::string& source() const { return compiled.source(); }
};

/// All 23 benchmarks, in suite order. Compiled once, lazily, thread-safe.
const std::vector<Benchmark>& allBenchmarks();

/// Lookup by name; throws tp::Error if absent.
const Benchmark& benchmarkByName(const std::string& name);

// Per-family factories (one translation unit each).
std::vector<Benchmark> makeVendorBenchmarks();
std::vector<Benchmark> makeShocBenchmarks();
std::vector<Benchmark> makeRodiniaBenchmarks();
std::vector<Benchmark> makePolybenchBenchmarks();

}  // namespace tp::suite
