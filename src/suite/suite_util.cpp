#include "suite/suite_util.hpp"

#include <cmath>
#include <sstream>

namespace tp::suite {

std::uint64_t instanceSeed(const std::string& name, std::size_t n) {
  // FNV-1a over the name, mixed with the size.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= static_cast<std::uint64_t>(n) * 0x9E3779B97F4A7C15ull;
  return h;
}

std::shared_ptr<vcl::Buffer> randomFloatBuffer(std::size_t n,
                                               common::Rng& rng, float lo,
                                               float hi) {
  auto buf = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  float* data = buf->data<float>();
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return buf;
}

std::shared_ptr<vcl::Buffer> randomIntBuffer(std::size_t n, common::Rng& rng,
                                             int lo, int hi) {
  auto buf = std::make_shared<vcl::Buffer>(vcl::ElemKind::I32, n);
  int* data = buf->data<int>();
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<int>(rng.range(lo, hi));
  }
  return buf;
}

std::shared_ptr<vcl::Buffer> zeroFloatBuffer(std::size_t n) {
  return std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
}

std::shared_ptr<vcl::Buffer> zeroIntBuffer(std::size_t n) {
  return std::make_shared<vcl::Buffer>(vcl::ElemKind::I32, n);
}

std::shared_ptr<vcl::Buffer> zeroUIntBuffer(std::size_t n) {
  return std::make_shared<vcl::Buffer>(vcl::ElemKind::U32, n);
}

bool verifyFloat(const vcl::Buffer& actual, const std::vector<float>& expected,
                 double tolerance, std::string* error) {
  if (actual.size() != expected.size()) {
    if (error != nullptr) *error = "size mismatch";
    return false;
  }
  const float* a = actual.data<float>();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double diff = std::fabs(static_cast<double>(a[i]) - expected[i]);
    const double scale = std::max(1.0, std::fabs(static_cast<double>(expected[i])));
    if (diff > tolerance * scale || std::isnan(a[i])) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "element " << i << ": got " << a[i] << ", expected "
           << expected[i] << " (tolerance " << tolerance << ")";
        *error = os.str();
      }
      return false;
    }
  }
  return true;
}

bool verifyInt(const vcl::Buffer& actual, const std::vector<int>& expected,
               std::string* error) {
  if (actual.size() != expected.size()) {
    if (error != nullptr) *error = "size mismatch";
    return false;
  }
  const int* a = actual.data<int>();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (a[i] != expected[i]) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "element " << i << ": got " << a[i] << ", expected "
           << expected[i];
        *error = os.str();
      }
      return false;
    }
  }
  return true;
}

bool verifyUInt(const vcl::Buffer& actual,
                const std::vector<unsigned>& expected, std::string* error) {
  if (actual.size() != expected.size()) {
    if (error != nullptr) *error = "size mismatch";
    return false;
  }
  const unsigned* a = actual.data<unsigned>();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (a[i] != expected[i]) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "element " << i << ": got " << a[i] << ", expected "
           << expected[i];
        *error = os.str();
      }
      return false;
    }
  }
  return true;
}

}  // namespace tp::suite
