// SHOC family: reduction, spmv (CSR), md (Lennard-Jones), stencil2d,
// sortrank (enumeration sort), fftstage (radix-2 butterfly).

#include <cmath>

#include "suite/benchmark.hpp"
#include "suite/suite_util.hpp"

namespace tp::suite {

using runtime::CompiledKernel;
using runtime::TaskBuilder;
using vcl::LaunchArgs;
using vcl::WorkGroupCtx;

namespace {

// ---------------------------------------------------------------------------
// reduction — per-group tree sum (SHOC Reduction).
// ---------------------------------------------------------------------------

Benchmark makeReduction() {
  const char* src = R"(
__kernel void reduction(__global const float* in, __global float* partial,
                        __local float* scratch, int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  float v = 0.0f;
  if (gid < n) {
    v = in[gid];
  }
  scratch[lid] = v;
  barrier(CLK_LOCAL_MEM_FENCE);
  int s = get_local_size(0) / 2;
  while (s > 0) {
    if (lid < s) {
      scratch[lid] = scratch[lid] + scratch[lid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    s = s / 2;
  }
  if (lid == 0) {
    partial[get_group_id(0)] = scratch[0];
  }
}
)";
  constexpr std::size_t kLocal = 128;
  Benchmark bench{"reduction", "shoc", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20, 1u << 22},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("reduction", n));
    auto in = randomFloatBuffer(n, rng);
    const std::size_t groups = n / kLocal;
    auto partial = zeroFloatBuffer(groups);
    auto scratchDummy = zeroFloatBuffer(kLocal);
    const auto in0 = in->toVector<float>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "reduction")
            .global(n)
            .local(kLocal)
            .arg(in)
            .arg(partial)
            .arg(scratchDummy)
            .arg(static_cast<int>(n))
            // Tree-reduction runs log2(localSize) iterations.
            .bind(features::kUnknownTripParam, 7.0)
            .transferAmortization(5.0)  // reductions consume device-resident data
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto in = args.view<float>(0);
              auto partial = args.view<float>(1);
              const int n = args.scalarInt(3);
              std::vector<float> scratch(wg.localSize, 0.0f);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t gid = wg.globalId(l);
                scratch[l] = static_cast<int>(gid) < n ? in[gid] : 0.0f;
              }
              for (std::size_t s = wg.localSize / 2; s > 0; s /= 2) {
                for (std::size_t l = 0; l < s; ++l) {
                  scratch[l] = scratch[l] + scratch[l + s];
                }
              }
              partial[wg.groupId] = scratch[0];
            })
            .build();
    inst.verify = [partial, in0](std::string* error) {
      const std::size_t groups = partial->size();
      const std::size_t local = in0.size() / groups;
      std::vector<float> expected(groups);
      for (std::size_t g = 0; g < groups; ++g) {
        std::vector<float> scratch(local);
        for (std::size_t l = 0; l < local; ++l) scratch[l] = in0[g * local + l];
        for (std::size_t s = local / 2; s > 0; s /= 2) {
          for (std::size_t l = 0; l < s; ++l) {
            scratch[l] = scratch[l] + scratch[l + s];
          }
        }
        expected[g] = scratch[0];
      }
      return verifyFloat(*partial, expected, 1e-5, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// spmv — CSR sparse matrix-vector product; irregular per-row work.
// ---------------------------------------------------------------------------

Benchmark makeSpmv() {
  const char* src = R"(
__kernel void spmv(__global const int* rowptr, __global const int* colidx,
                   __global const float* val, __global const float* x,
                   __global float* y, int n) {
  int row = get_global_id(0);
  if (row < n) {
    float acc = 0.0f;
    for (int j = rowptr[row]; j < rowptr[row + 1]; j++) {
      acc += val[j] * x[colidx[j]];
    }
    y[row] = acc;
  }
}
)";
  Benchmark bench{"spmv", "shoc", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 16, 1u << 17, 1u << 18, 1u << 20},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("spmv", n));
    // CSR with 1..16 nonzeros per row (mean ~8), random columns.
    std::vector<int> rowptrV(n + 1, 0);
    for (std::size_t r = 0; r < n; ++r) {
      rowptrV[r + 1] = rowptrV[r] + static_cast<int>(rng.range(1, 16));
    }
    const auto nnz = static_cast<std::size_t>(rowptrV[n]);
    auto rowptr = std::make_shared<vcl::Buffer>(vcl::ElemKind::I32, n + 1);
    rowptr->fill(rowptrV);
    auto colidx = randomIntBuffer(nnz, rng, 0, static_cast<int>(n) - 1);
    auto val = randomFloatBuffer(nnz, rng);
    auto x = randomFloatBuffer(n, rng);
    auto y = zeroFloatBuffer(n);
    const auto col0 = colidx->toVector<int>();
    const auto val0 = val->toVector<float>();
    const auto x0 = x->toVector<float>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "spmv")
            .global(n)
            .local(64)
            .arg(rowptr)
            .arg(colidx)
            .arg(val)
            .arg(x)
            .arg(y)
            .arg(static_cast<int>(n))
            // Average CSR row length; drives the unknown-trip-count feature.
            .bind(features::kUnknownTripParam, 8.0)
            .transferAmortization(10.0)  // SpMV is the CG inner kernel
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto rowptr = args.view<int>(0);
              auto colidx = args.view<int>(1);
              auto val = args.view<float>(2);
              auto x = args.view<float>(3);
              auto y = args.view<float>(4);
              const int n = args.scalarInt(5);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t row = wg.globalId(l);
                if (static_cast<int>(row) >= n) continue;
                float acc = 0.0f;
                for (int j = rowptr[row]; j < rowptr[row + 1]; ++j) {
                  const auto ju = static_cast<std::size_t>(j);
                  acc += val[ju] * x[static_cast<std::size_t>(colidx[ju])];
                }
                y[row] = acc;
              }
            })
            .build();
    inst.verify = [y, rowptrV, col0, val0, x0, n](std::string* error) {
      std::vector<float> expected(n);
      for (std::size_t row = 0; row < n; ++row) {
        float acc = 0.0f;
        for (int j = rowptrV[row]; j < rowptrV[row + 1]; ++j) {
          const auto ju = static_cast<std::size_t>(j);
          acc += val0[ju] * x0[static_cast<std::size_t>(col0[ju])];
        }
        expected[row] = acc;
      }
      return verifyFloat(*y, expected, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// md — Lennard-Jones forces over a fixed-degree neighbor list (SHOC MD).
// ---------------------------------------------------------------------------

Benchmark makeMd() {
  const char* src = R"(
__kernel void md(__global const float* px, __global const float* py,
                 __global const float* pz, __global const int* neigh,
                 __global float* fx, __global float* fy, __global float* fz,
                 int n, int maxNeigh, float cutsq, float lj1, float lj2) {
  int i = get_global_id(0);
  float xi = px[i];
  float yi = py[i];
  float zi = pz[i];
  float ax = 0.0f;
  float ay = 0.0f;
  float az = 0.0f;
  for (int k = 0; k < maxNeigh; k++) {
    int j = neigh[i * maxNeigh + k];
    float dx = xi - px[j];
    float dy = yi - py[j];
    float dz = zi - pz[j];
    float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 < cutsq) {
      float r2inv = 1.0f / r2;
      float r6inv = r2inv * r2inv * r2inv;
      float force = r2inv * r6inv * (lj1 * r6inv - lj2);
      ax += dx * force;
      ay += dy * force;
      az += dz * force;
    }
  }
  fx[i] = ax;
  fy[i] = ay;
  fz[i] = az;
}
)";
  constexpr int kMaxNeigh = 32;
  Benchmark bench{"md", "shoc", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 15, 1u << 16, 1u << 17, 1u << 18},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("md", n));
    auto px = randomFloatBuffer(n, rng, 0.0f, 10.0f);
    auto py = randomFloatBuffer(n, rng, 0.0f, 10.0f);
    auto pz = randomFloatBuffer(n, rng, 0.0f, 10.0f);
    // Neighbor lists never contain the particle itself (self-interaction
    // would divide by r² = 0).
    auto neigh = std::make_shared<vcl::Buffer>(vcl::ElemKind::I32,
                                               n * kMaxNeigh);
    {
      int* nb = neigh->data<int>();
      for (std::size_t i = 0; i < n; ++i) {
        for (int k = 0; k < kMaxNeigh; ++k) {
          const auto offset =
              static_cast<std::size_t>(rng.range(1, static_cast<int>(n) - 1));
          nb[i * kMaxNeigh + static_cast<std::size_t>(k)] =
              static_cast<int>((i + offset) % n);
        }
      }
    }
    auto fx = zeroFloatBuffer(n);
    auto fy = zeroFloatBuffer(n);
    auto fz = zeroFloatBuffer(n);
    const float cutsq = 4.0f, lj1 = 1.5f, lj2 = 2.0f;
    const auto x0 = px->toVector<float>();
    const auto y0 = py->toVector<float>();
    const auto z0 = pz->toVector<float>();
    const auto nb0 = neigh->toVector<int>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "md")
            .global(n)
            .local(64)
            .arg(px)
            .arg(py)
            .arg(pz)
            .arg(neigh)
            .arg(fx)
            .arg(fy)
            .arg(fz)
            .arg(static_cast<int>(n))
            .arg(kMaxNeigh)
            .arg(cutsq)
            .arg(lj1)
            .arg(lj2)
            .transferAmortization(20.0)  // MD runs many timesteps
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto px = args.view<float>(0);
              auto py = args.view<float>(1);
              auto pz = args.view<float>(2);
              auto neigh = args.view<int>(3);
              auto fx = args.view<float>(4);
              auto fy = args.view<float>(5);
              auto fz = args.view<float>(6);
              const int maxNeigh = args.scalarInt(8);
              const float cutsq = args.scalarFloat(9);
              const float lj1 = args.scalarFloat(10);
              const float lj2 = args.scalarFloat(11);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t i = wg.globalId(l);
                const float xi = px[i], yi = py[i], zi = pz[i];
                float ax = 0.0f, ay = 0.0f, az = 0.0f;
                for (int k = 0; k < maxNeigh; ++k) {
                  const auto j = static_cast<std::size_t>(
                      neigh[i * static_cast<std::size_t>(maxNeigh) +
                            static_cast<std::size_t>(k)]);
                  const float dx = xi - px[j];
                  const float dy = yi - py[j];
                  const float dz = zi - pz[j];
                  const float r2 = dx * dx + dy * dy + dz * dz;
                  if (r2 < cutsq) {
                    const float r2inv = 1.0f / r2;
                    const float r6inv = r2inv * r2inv * r2inv;
                    const float force = r2inv * r6inv * (lj1 * r6inv - lj2);
                    ax += dx * force;
                    ay += dy * force;
                    az += dz * force;
                  }
                }
                fx[i] = ax;
                fy[i] = ay;
                fz[i] = az;
              }
            })
            .build();
    inst.verify = [fx, fy, fz, x0, y0, z0, nb0, cutsq, lj1,
                   lj2](std::string* error) {
      const std::size_t n = x0.size();
      std::vector<float> ex(n), ey(n), ez(n);
      for (std::size_t i = 0; i < n; ++i) {
        float ax = 0.0f, ay = 0.0f, az = 0.0f;
        for (int k = 0; k < kMaxNeigh; ++k) {
          const auto j = static_cast<std::size_t>(
              nb0[i * kMaxNeigh + static_cast<std::size_t>(k)]);
          const float dx = x0[i] - x0[j];
          const float dy = y0[i] - y0[j];
          const float dz = z0[i] - z0[j];
          const float r2 = dx * dx + dy * dy + dz * dz;
          if (r2 < cutsq) {
            const float r2inv = 1.0f / r2;
            const float r6inv = r2inv * r2inv * r2inv;
            const float force = r2inv * r6inv * (lj1 * r6inv - lj2);
            ax += dx * force;
            ay += dy * force;
            az += dz * force;
          }
        }
        ex[i] = ax;
        ey[i] = ay;
        ez[i] = az;
      }
      return verifyFloat(*fx, ex, 1e-3, error) &&
             verifyFloat(*fy, ey, 1e-3, error) &&
             verifyFloat(*fz, ez, 1e-3, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// stencil2d — 5-point Jacobi step with boundary branches.
// ---------------------------------------------------------------------------

Benchmark makeStencil2d() {
  const char* src = R"(
__kernel void stencil2d(__global const float* in, __global float* out,
                        int width, int height, float c0, float c1) {
  int idx = get_global_id(0);
  int x = idx % width;
  int y = idx / width;
  float v = in[idx] * c0;
  if (x > 0) {
    v += in[idx - 1] * c1;
  }
  if (x < width - 1) {
    v += in[idx + 1] * c1;
  }
  if (y > 0) {
    v += in[idx - width] * c1;
  }
  if (y < height - 1) {
    v += in[idx + width] * c1;
  }
  out[idx] = v;
}
)";
  Benchmark bench{"stencil2d", "shoc", CompiledKernel::compile(src),
                  {128, 256, 384, 512, 768, 1024},  // square grid edge
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t edge) {
    const std::size_t n = edge * edge;
    common::Rng rng(instanceSeed("stencil2d", edge));
    auto in = randomFloatBuffer(n, rng);
    auto out = zeroFloatBuffer(n);
    const float c0 = 0.6f, c1 = 0.1f;
    const auto in0 = in->toVector<float>();

    auto stencilAt = [](const std::vector<float>& grid, std::size_t idx,
                        std::size_t width, std::size_t height, float c0,
                        float c1) {
      const std::size_t x = idx % width;
      const std::size_t y = idx / width;
      float v = grid[idx] * c0;
      if (x > 0) v += grid[idx - 1] * c1;
      if (x < width - 1) v += grid[idx + 1] * c1;
      if (y > 0) v += grid[idx - width] * c1;
      if (y < height - 1) v += grid[idx + width] * c1;
      return v;
    };

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "stencil2d")
            .global(n)
            .local(64)
            .arg(in)
            .arg(out)
            .arg(static_cast<int>(edge))
            .arg(static_cast<int>(edge))
            .arg(c0)
            .arg(c1)
            .transferAmortization(20.0)  // Jacobi iterations, grid resident
            .native([stencilAt](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto in = args.view<float>(0);
              auto out = args.view<float>(1);
              const auto width = static_cast<std::size_t>(args.scalarInt(2));
              const auto height = static_cast<std::size_t>(args.scalarInt(3));
              const float c0 = args.scalarFloat(4);
              const float c1 = args.scalarFloat(5);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t idx = wg.globalId(l);
                const std::size_t x = idx % width;
                const std::size_t y = idx / width;
                float v = in[idx] * c0;
                if (x > 0) v += in[idx - 1] * c1;
                if (x < width - 1) v += in[idx + 1] * c1;
                if (y > 0) v += in[idx - width] * c1;
                if (y < height - 1) v += in[idx + width] * c1;
                out[idx] = v;
              }
            })
            .build();
    inst.verify = [out, in0, edge, c0, c1, stencilAt](std::string* error) {
      const std::size_t n = edge * edge;
      std::vector<float> expected(n);
      for (std::size_t idx = 0; idx < n; ++idx) {
        expected[idx] = stencilAt(in0, idx, edge, edge, c0, c1);
      }
      return verifyFloat(*out, expected, 1e-5, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// sortrank — enumeration (rank) sort step: O(n) comparisons per item.
// ---------------------------------------------------------------------------

Benchmark makeSortrank() {
  const char* src = R"(
__kernel void sortrank(__global const float* in, __global int* rank, int n) {
  int i = get_global_id(0);
  float vi = in[i];
  int r = 0;
  for (int j = 0; j < n; j++) {
    float vj = in[j];
    if (vj < vi || (vj == vi && j < i)) {
      r++;
    }
  }
  rank[i] = r;
}
)";
  Benchmark bench{"sortrank", "shoc", CompiledKernel::compile(src),
                  {1024, 2048, 4096, 8192, 16384, 32768},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("sortrank", n));
    auto in = randomFloatBuffer(n, rng);
    auto rank = zeroIntBuffer(n);
    const auto in0 = in->toVector<float>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "sortrank")
            .global(n)
            .local(64)
            .arg(in)
            .arg(rank)
            .arg(static_cast<int>(n))
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto in = args.view<float>(0);
              auto rank = args.view<int>(1);
              const int n = args.scalarInt(2);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t i = wg.globalId(l);
                const float vi = in[i];
                int r = 0;
                for (int j = 0; j < n; ++j) {
                  const float vj = in[static_cast<std::size_t>(j)];
                  if (vj < vi ||
                      (vj == vi && static_cast<std::size_t>(j) < i)) {
                    ++r;
                  }
                }
                rank[i] = r;
              }
            })
            .build();
    inst.verify = [rank, in0](std::string* error) {
      const std::size_t n = in0.size();
      std::vector<int> expected(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        int r = 0;
        for (std::size_t j = 0; j < n; ++j) {
          if (in0[j] < in0[i] || (in0[j] == in0[i] && j < i)) ++r;
        }
        expected[i] = r;
      }
      return verifyInt(*rank, expected, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// fftstage — one radix-2 butterfly stage with sin/cos twiddles.
// ---------------------------------------------------------------------------

Benchmark makeFftstage() {
  const char* src = R"(
__kernel void fftstage(__global const float* re, __global const float* im,
                       __global float* outRe, __global float* outIm,
                       int stride, int n) {
  int i = get_global_id(0);
  int bit = i & stride;
  float angle = -6.2831853f * (float)(i % stride) / ((float)stride * 2.0f);
  float wr = cos(angle);
  float wi = sin(angle);
  if (bit == 0) {
    int p = i + stride;
    float tr = wr * re[p] - wi * im[p];
    float ti = wr * im[p] + wi * re[p];
    outRe[i] = re[i] + tr;
    outIm[i] = im[i] + ti;
  } else {
    int p = i - stride;
    float tr = wr * re[i] - wi * im[i];
    float ti = wr * im[i] + wi * re[i];
    outRe[i] = re[p] - tr;
    outIm[i] = im[p] - ti;
  }
}
)";
  Benchmark bench{"fftstage", "shoc", CompiledKernel::compile(src),
                  {1u << 14, 1u << 16, 1u << 18, 1u << 19, 1u << 20, 1u << 21},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("fftstage", n));
    auto re = randomFloatBuffer(n, rng);
    auto im = randomFloatBuffer(n, rng);
    auto outRe = zeroFloatBuffer(n);
    auto outIm = zeroFloatBuffer(n);
    const int stride = static_cast<int>(n / 2);
    const auto re0 = re->toVector<float>();
    const auto im0 = im->toVector<float>();

    auto butterfly = [](const std::vector<float>& re,
                        const std::vector<float>& im, std::size_t i,
                        int stride, float* oRe, float* oIm) {
      const int bit = static_cast<int>(i) & stride;
      const float angle = -6.2831853f *
                          static_cast<float>(static_cast<int>(i) % stride) /
                          (static_cast<float>(stride) * 2.0f);
      const float wr = std::cos(angle);
      const float wi = std::sin(angle);
      if (bit == 0) {
        const std::size_t p = i + static_cast<std::size_t>(stride);
        const float tr = wr * re[p] - wi * im[p];
        const float ti = wr * im[p] + wi * re[p];
        *oRe = re[i] + tr;
        *oIm = im[i] + ti;
      } else {
        const std::size_t p = i - static_cast<std::size_t>(stride);
        const float tr = wr * re[i] - wi * im[i];
        const float ti = wr * im[i] + wi * re[i];
        *oRe = re[p] - tr;
        *oIm = im[p] - ti;
      }
    };

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "fftstage")
            .global(n)
            .local(64)
            .arg(re)
            .arg(im)
            .arg(outRe)
            .arg(outIm)
            .arg(stride)
            .arg(static_cast<int>(n))
            .transferAmortization(10.0)  // log2(n) stages, data resident
            .native([butterfly](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto re = args.view<float>(0);
              auto im = args.view<float>(1);
              auto outRe = args.view<float>(2);
              auto outIm = args.view<float>(3);
              const int stride = args.scalarInt(4);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t i = wg.globalId(l);
                const int bit = static_cast<int>(i) & stride;
                const float angle =
                    -6.2831853f *
                    static_cast<float>(static_cast<int>(i) % stride) /
                    (static_cast<float>(stride) * 2.0f);
                const float wr = std::cos(angle);
                const float wi = std::sin(angle);
                if (bit == 0) {
                  const std::size_t p = i + static_cast<std::size_t>(stride);
                  const float tr = wr * re[p] - wi * im[p];
                  const float ti = wr * im[p] + wi * re[p];
                  outRe[i] = re[i] + tr;
                  outIm[i] = im[i] + ti;
                } else {
                  const std::size_t p = i - static_cast<std::size_t>(stride);
                  const float tr = wr * re[i] - wi * im[i];
                  const float ti = wr * im[i] + wi * re[i];
                  outRe[i] = re[p] - tr;
                  outIm[i] = im[p] - ti;
                }
              }
            })
            .build();
    inst.verify = [outRe, outIm, re0, im0, stride,
                   butterfly](std::string* error) {
      const std::size_t n = re0.size();
      std::vector<float> eRe(n), eIm(n);
      for (std::size_t i = 0; i < n; ++i) {
        butterfly(re0, im0, i, stride, &eRe[i], &eIm[i]);
      }
      return verifyFloat(*outRe, eRe, 1e-4, error) &&
             verifyFloat(*outIm, eIm, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

}  // namespace

std::vector<Benchmark> makeShocBenchmarks() {
  std::vector<Benchmark> out;
  out.push_back(makeReduction());
  out.push_back(makeSpmv());
  out.push_back(makeMd());
  out.push_back(makeStencil2d());
  out.push_back(makeSortrank());
  out.push_back(makeFftstage());
  return out;
}

}  // namespace tp::suite
