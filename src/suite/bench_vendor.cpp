// Vendor-sample family: vecadd, saxpy, dotprod, matmul, matvec,
// blackscholes, mandelbrot, histogram, nbody.

#include <cmath>
#include <memory>

#include "suite/benchmark.hpp"
#include "suite/suite_util.hpp"

namespace tp::suite {

using runtime::CompiledKernel;
using runtime::TaskBuilder;
using vcl::LaunchArgs;
using vcl::WorkGroupCtx;

namespace {

// ---------------------------------------------------------------------------
// vecadd — the canonical memory-bound streaming kernel.
// ---------------------------------------------------------------------------

Benchmark makeVecadd() {
  const char* src = R"(
__kernel void vecadd(__global const float* a, __global const float* b,
                     __global float* c, int n) {
  int i = get_global_id(0);
  if (i < n) {
    c[i] = a[i] + b[i];
  }
}
)";
  Benchmark bench{"vecadd", "vendor", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20, 1u << 22},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("vecadd", n));
    auto a = randomFloatBuffer(n, rng);
    auto b = randomFloatBuffer(n, rng);
    auto c = zeroFloatBuffer(n);
    const auto a0 = a->toVector<float>();
    const auto b0 = b->toVector<float>();

    BenchmarkInstance inst;
    inst.task = TaskBuilder(compiled, "vecadd")
                    .global(n)
                    .local(64)
                    .arg(a)
                    .arg(b)
                    .arg(c)
                    .arg(static_cast<int>(n))
                    .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
                      auto a = args.view<float>(0);
                      auto b = args.view<float>(1);
                      auto c = args.view<float>(2);
                      const int n = args.scalarInt(3);
                      for (std::size_t l = 0; l < wg.localSize; ++l) {
                        const std::size_t i = wg.globalId(l);
                        if (static_cast<int>(i) < n) c[i] = a[i] + b[i];
                      }
                    })
                    .build();
    inst.verify = [c, a0, b0](std::string* error) {
      std::vector<float> expected(a0.size());
      for (std::size_t i = 0; i < a0.size(); ++i) expected[i] = a0[i] + b0[i];
      return verifyFloat(*c, expected, 1e-6, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// saxpy — streaming with a read-modify-write output.
// ---------------------------------------------------------------------------

Benchmark makeSaxpy() {
  const char* src = R"(
__kernel void saxpy(__global const float* x, __global float* y,
                    float alpha, int n) {
  int i = get_global_id(0);
  if (i < n) {
    y[i] = alpha * x[i] + y[i];
  }
}
)";
  Benchmark bench{"saxpy", "vendor", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20, 1u << 22},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("saxpy", n));
    auto x = randomFloatBuffer(n, rng);
    auto y = randomFloatBuffer(n, rng);
    const float alpha = 2.5f;
    const auto x0 = x->toVector<float>();
    const auto y0 = y->toVector<float>();

    BenchmarkInstance inst;
    inst.task = TaskBuilder(compiled, "saxpy")
                    .global(n)
                    .local(64)
                    .arg(x)
                    .arg(y)
                    .arg(alpha)
                    .arg(static_cast<int>(n))
                    .transferAmortization(10.0)  // AXPY inside iterative solvers
                    .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
                      auto x = args.view<float>(0);
                      auto y = args.view<float>(1);
                      const float alpha = args.scalarFloat(2);
                      const int n = args.scalarInt(3);
                      for (std::size_t l = 0; l < wg.localSize; ++l) {
                        const std::size_t i = wg.globalId(l);
                        if (static_cast<int>(i) < n) y[i] = alpha * x[i] + y[i];
                      }
                    })
                    .build();
    inst.verify = [y, x0, y0, alpha](std::string* error) {
      std::vector<float> expected(x0.size());
      for (std::size_t i = 0; i < x0.size(); ++i) {
        expected[i] = alpha * x0[i] + y0[i];
      }
      return verifyFloat(*y, expected, 1e-6, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// dotprod — per-group tree reduction in __local memory with barriers.
// ---------------------------------------------------------------------------

Benchmark makeDotprod() {
  const char* src = R"(
__kernel void dotprod(__global const float* a, __global const float* b,
                      __global float* partial, __local float* scratch,
                      int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  float v = 0.0f;
  if (gid < n) {
    v = a[gid] * b[gid];
  }
  scratch[lid] = v;
  barrier(CLK_LOCAL_MEM_FENCE);
  int s = get_local_size(0) / 2;
  while (s > 0) {
    if (lid < s) {
      scratch[lid] = scratch[lid] + scratch[lid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    s = s / 2;
  }
  if (lid == 0) {
    partial[get_group_id(0)] = scratch[0];
  }
}
)";
  constexpr std::size_t kLocal = 128;
  Benchmark bench{"dotprod", "vendor", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20, 1u << 22},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("dotprod", n));
    auto a = randomFloatBuffer(n, rng);
    auto b = randomFloatBuffer(n, rng);
    const std::size_t groups = n / kLocal;
    auto partial = zeroFloatBuffer(groups);
    auto scratchDummy = zeroFloatBuffer(kLocal);  // __local placeholder
    const auto a0 = a->toVector<float>();
    const auto b0 = b->toVector<float>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "dotprod")
            .global(n)
            .local(kLocal)
            .arg(a)
            .arg(b)
            .arg(partial)
            .arg(scratchDummy)
            .arg(static_cast<int>(n))
            // Tree-reduction runs log2(localSize) iterations.
            .bind(features::kUnknownTripParam, 7.0)
            .transferAmortization(10.0)  // dot products inside CG-style solvers
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto a = args.view<float>(0);
              auto b = args.view<float>(1);
              auto partial = args.view<float>(2);
              const int n = args.scalarInt(4);
              // Private per-group scratch (the __local argument is a
              // placeholder; concurrent groups must not share storage).
              std::vector<float> scratch(wg.localSize, 0.0f);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t gid = wg.globalId(l);
                scratch[l] =
                    static_cast<int>(gid) < n ? a[gid] * b[gid] : 0.0f;
              }
              for (std::size_t s = wg.localSize / 2; s > 0; s /= 2) {
                for (std::size_t l = 0; l < s; ++l) {
                  scratch[l] = scratch[l] + scratch[l + s];
                }
              }
              partial[wg.groupId] = scratch[0];
            })
            .build();
    inst.verify = [partial, a0, b0](std::string* error) {
      const std::size_t groups = partial->size();
      const std::size_t local = a0.size() / groups;
      std::vector<float> expected(groups);
      for (std::size_t g = 0; g < groups; ++g) {
        std::vector<float> scratch(local);
        for (std::size_t l = 0; l < local; ++l) {
          const std::size_t i = g * local + l;
          scratch[l] = a0[i] * b0[i];
        }
        for (std::size_t s = local / 2; s > 0; s /= 2) {
          for (std::size_t l = 0; l < s; ++l) {
            scratch[l] = scratch[l] + scratch[l + s];
          }
        }
        expected[g] = scratch[0];
      }
      return verifyFloat(*partial, expected, 1e-5, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// matmul — dense SGEMM over a 1-D index space (one output element per item).
// ---------------------------------------------------------------------------

Benchmark makeMatmul() {
  const char* src = R"(
__kernel void matmul(__global const float* A, __global const float* B,
                     __global float* C, int N, int K) {
  int idx = get_global_id(0);
  int row = idx / N;
  int col = idx % N;
  float acc = 0.0f;
  for (int k = 0; k < K; k++) {
    acc += A[row * K + k] * B[k * N + col];
  }
  C[idx] = acc;
}
)";
  Benchmark bench{"matmul", "vendor", CompiledKernel::compile(src),
                  {64, 128, 192, 256, 384, 512},  // matrix dimension
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("matmul", n));
    auto A = randomFloatBuffer(n * n, rng);
    auto B = randomFloatBuffer(n * n, rng);
    auto C = zeroFloatBuffer(n * n);
    const auto A0 = A->toVector<float>();
    const auto B0 = B->toVector<float>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "matmul")
            .global(n * n)
            .local(64)
            .arg(A)
            .arg(B)
            .arg(C)
            .arg(static_cast<int>(n))
            .arg(static_cast<int>(n))
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto A = args.view<float>(0);
              auto B = args.view<float>(1);
              auto C = args.view<float>(2);
              const int N = args.scalarInt(3);
              const int K = args.scalarInt(4);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t idx = wg.globalId(l);
                const std::size_t row = idx / static_cast<std::size_t>(N);
                const std::size_t col = idx % static_cast<std::size_t>(N);
                float acc = 0.0f;
                for (int k = 0; k < K; ++k) {
                  acc += A[row * static_cast<std::size_t>(K) +
                           static_cast<std::size_t>(k)] *
                         B[static_cast<std::size_t>(k) *
                               static_cast<std::size_t>(N) +
                           col];
                }
                C[idx] = acc;
              }
            })
            .build();
    inst.verify = [C, A0, B0, n](std::string* error) {
      std::vector<float> expected(n * n);
      for (std::size_t idx = 0; idx < n * n; ++idx) {
        const std::size_t row = idx / n;
        const std::size_t col = idx % n;
        float acc = 0.0f;
        for (std::size_t k = 0; k < n; ++k) {
          acc += A0[row * n + k] * B0[k * n + col];
        }
        expected[idx] = acc;
      }
      return verifyFloat(*C, expected, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// matvec — row-parallel GEMV with a fixed 256-column matrix.
// ---------------------------------------------------------------------------

Benchmark makeMatvec() {
  const char* src = R"(
__kernel void matvec(__global const float* A, __global const float* x,
                     __global float* y, int cols) {
  int row = get_global_id(0);
  float acc = 0.0f;
  for (int j = 0; j < cols; j++) {
    acc += A[row * cols + j] * x[j];
  }
  y[row] = acc;
}
)";
  constexpr std::size_t kCols = 256;
  Benchmark bench{"matvec", "vendor", CompiledKernel::compile(src),
                  {1u << 10, 1u << 12, 1u << 13, 1u << 14, 1u << 15, 1u << 16},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("matvec", n));
    auto A = randomFloatBuffer(n * kCols, rng);
    auto x = randomFloatBuffer(kCols, rng);
    auto y = zeroFloatBuffer(n);
    const auto A0 = A->toVector<float>();
    const auto x0 = x->toVector<float>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "matvec")
            .global(n)
            .local(64)
            .arg(A)
            .arg(x)
            .arg(y)
            .arg(static_cast<int>(kCols))
            .transferAmortization(10.0)  // GEMV is the CG/GMRES inner kernel
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto A = args.view<float>(0);
              auto x = args.view<float>(1);
              auto y = args.view<float>(2);
              const int cols = args.scalarInt(3);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t row = wg.globalId(l);
                float acc = 0.0f;
                for (int j = 0; j < cols; ++j) {
                  acc += A[row * static_cast<std::size_t>(cols) +
                           static_cast<std::size_t>(j)] *
                         x[static_cast<std::size_t>(j)];
                }
                y[row] = acc;
              }
            })
            .build();
    inst.verify = [y, A0, x0, n](std::string* error) {
      std::vector<float> expected(n);
      for (std::size_t row = 0; row < n; ++row) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < kCols; ++j) {
          acc += A0[row * kCols + j] * x0[j];
        }
        expected[row] = acc;
      }
      return verifyFloat(*y, expected, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// blackscholes — transcendental-heavy option pricing.
// ---------------------------------------------------------------------------

/// Cumulative normal distribution, Abramowitz–Stegun polynomial — float
/// semantics shared by the native kernel and the verifier.
float cndF(float d) {
  const float k = 1.0f / (1.0f + 0.2316419f * std::fabs(d));
  const float poly =
      k * (0.31938153f +
           k * (-0.356563782f +
                k * (1.781477937f + k * (-1.821255978f + k * 1.330274429f))));
  const float cnd = 0.39894228f * std::exp(-0.5f * d * d) * poly;
  return d > 0.0f ? 1.0f - cnd : cnd;
}

Benchmark makeBlackscholes() {
  const char* src = R"(
__kernel void blackscholes(__global const float* sp, __global const float* xp,
                           __global const float* tp, __global float* call,
                           __global float* put, float r, float v, int n) {
  int i = get_global_id(0);
  if (i < n) {
    float s = sp[i];
    float x = xp[i];
    float t = tp[i];
    float sq = sqrt(t);
    float d1 = (log(s / x) + (r + v * v * 0.5f) * t) / (v * sq);
    float d2 = d1 - v * sq;

    float k1 = 1.0f / (1.0f + 0.2316419f * fabs(d1));
    float p1 = k1 * (0.31938153f + k1 * (-0.356563782f + k1 * (1.781477937f
             + k1 * (-1.821255978f + k1 * 1.330274429f))));
    float c1 = 0.39894228f * exp(-0.5f * d1 * d1) * p1;
    if (d1 > 0.0f) {
      c1 = 1.0f - c1;
    }
    float k2 = 1.0f / (1.0f + 0.2316419f * fabs(d2));
    float p2 = k2 * (0.31938153f + k2 * (-0.356563782f + k2 * (1.781477937f
             + k2 * (-1.821255978f + k2 * 1.330274429f))));
    float c2 = 0.39894228f * exp(-0.5f * d2 * d2) * p2;
    if (d2 > 0.0f) {
      c2 = 1.0f - c2;
    }
    float expRT = exp(0.0f - r * t);
    call[i] = s * c1 - x * expRT * c2;
    put[i] = x * expRT * (1.0f - c2) - s * (1.0f - c1);
  }
}
)";
  Benchmark bench{"blackscholes", "vendor", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20, 1u << 21},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("blackscholes", n));
    auto sp = randomFloatBuffer(n, rng, 10.0f, 100.0f);
    auto xp = randomFloatBuffer(n, rng, 10.0f, 100.0f);
    auto t = randomFloatBuffer(n, rng, 0.2f, 5.0f);
    auto call = zeroFloatBuffer(n);
    auto put = zeroFloatBuffer(n);
    const float r = 0.02f;
    const float v = 0.30f;
    const auto s0 = sp->toVector<float>();
    const auto x0 = xp->toVector<float>();
    const auto t0 = t->toVector<float>();

    auto priceOne = [](float s, float x, float tt, float r, float v,
                       float* outCall, float* outPut) {
      const float sq = std::sqrt(tt);
      const float d1 =
          (std::log(s / x) + (r + v * v * 0.5f) * tt) / (v * sq);
      const float d2 = d1 - v * sq;
      const float c1 = cndF(d1);
      const float c2 = cndF(d2);
      const float expRT = std::exp(-r * tt);
      *outCall = s * c1 - x * expRT * c2;
      *outPut = x * expRT * (1.0f - c2) - s * (1.0f - c1);
    };

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "blackscholes")
            .global(n)
            .local(64)
            .arg(sp)
            .arg(xp)
            .arg(t)
            .arg(call)
            .arg(put)
            .arg(r)
            .arg(v)
            .arg(static_cast<int>(n))
            // Vendor sample semantics: the pricing kernel re-runs many times
            // per measurement with resident option data.
            .transferAmortization(50.0)
            .native([priceOne](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto sp = args.view<float>(0);
              auto xp = args.view<float>(1);
              auto tp = args.view<float>(2);
              auto call = args.view<float>(3);
              auto put = args.view<float>(4);
              const float r = args.scalarFloat(5);
              const float v = args.scalarFloat(6);
              const int n = args.scalarInt(7);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t i = wg.globalId(l);
                if (static_cast<int>(i) >= n) continue;
                float c, p;
                priceOne(sp[i], xp[i], tp[i], r, v, &c, &p);
                call[i] = c;
                put[i] = p;
              }
            })
            .build();
    inst.verify = [call, put, s0, x0, t0, r, v, priceOne](std::string* error) {
      std::vector<float> expectedCall(s0.size()), expectedPut(s0.size());
      for (std::size_t i = 0; i < s0.size(); ++i) {
        priceOne(s0[i], x0[i], t0[i], r, v, &expectedCall[i], &expectedPut[i]);
      }
      return verifyFloat(*call, expectedCall, 1e-4, error) &&
             verifyFloat(*put, expectedPut, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// mandelbrot — divergent while loop, branch-heavy.
// ---------------------------------------------------------------------------

Benchmark makeMandelbrot() {
  const char* src = R"(
__kernel void mandelbrot(__global float* out, int width, int maxIter) {
  int idx = get_global_id(0);
  int px = idx % width;
  int py = idx / width;
  float x0 = -2.0f + 3.0f * (float)px / (float)width;
  float y0 = -1.25f + 2.5f * (float)py / (float)width;
  float x = 0.0f;
  float y = 0.0f;
  int iter = 0;
  while (iter < maxIter && x * x + y * y < 4.0f) {
    float xt = x * x - y * y + x0;
    y = 2.0f * x * y + y0;
    x = xt;
    iter++;
  }
  out[idx] = (float)iter;
}
)";
  Benchmark bench{"mandelbrot", "vendor", CompiledKernel::compile(src),
                  {64, 128, 256, 512, 768, 1024},  // image width (square)
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t width) {
    const std::size_t n = width * width;
    auto out = zeroFloatBuffer(n);
    const int maxIter = 128;

    auto iterate = [](std::size_t idx, std::size_t width, int maxIter) {
      const std::size_t px = idx % width;
      const std::size_t py = idx / width;
      const float x0 =
          -2.0f + 3.0f * static_cast<float>(px) / static_cast<float>(width);
      const float y0 =
          -1.25f + 2.5f * static_cast<float>(py) / static_cast<float>(width);
      float x = 0.0f, y = 0.0f;
      int iter = 0;
      while (iter < maxIter && x * x + y * y < 4.0f) {
        const float xt = x * x - y * y + x0;
        y = 2.0f * x * y + y0;
        x = xt;
        ++iter;
      }
      return static_cast<float>(iter);
    };

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "mandelbrot")
            .global(n)
            .local(64)
            .arg(out)
            .arg(static_cast<int>(width))
            .arg(maxIter)
            // Average escape-loop trip count over the rendered region — a
            // measured runtime feature (the loop bound is data dependent).
            .bind(features::kUnknownTripParam, 32.0)
            .native([iterate](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto out = args.view<float>(0);
              const int width = args.scalarInt(1);
              const int maxIter = args.scalarInt(2);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t idx = wg.globalId(l);
                out[idx] = iterate(idx, static_cast<std::size_t>(width),
                                   maxIter);
              }
            })
            .build();
    inst.verify = [out, width, maxIter, iterate](std::string* error) {
      const std::size_t n = width * width;
      std::vector<float> expected(n);
      for (std::size_t idx = 0; idx < n; ++idx) {
        expected[idx] = iterate(idx, width, maxIter);
      }
      return verifyFloat(*out, expected, 0.0, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// histogram — atomic scatter into shared bins.
// ---------------------------------------------------------------------------

Benchmark makeHistogram() {
  const char* src = R"(
__kernel void histogram(__global const int* data, __global int* bins,
                        int n, int numBins) {
  int i = get_global_id(0);
  if (i < n) {
    int b = data[i] % numBins;
    if (b < 0) {
      b = b + numBins;
    }
    atomic_add(bins[b], 1);
  }
}
)";
  constexpr int kBins = 256;
  Benchmark bench{"histogram", "vendor", CompiledKernel::compile(src),
                  {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20, 1u << 22},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("histogram", n));
    auto data = randomIntBuffer(n, rng, 0, 1 << 20);
    auto bins = zeroIntBuffer(kBins);
    const auto d0 = data->toVector<int>();

    BenchmarkInstance inst;
    inst.task = TaskBuilder(compiled, "histogram")
                    .global(n)
                    .local(64)
                    .arg(data)
                    .arg(bins)
                    .arg(static_cast<int>(n))
                    .arg(kBins)
                    .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
                      auto data = args.view<int>(0);
                      auto bins = args.view<int>(1);
                      const int n = args.scalarInt(2);
                      const int numBins = args.scalarInt(3);
                      for (std::size_t l = 0; l < wg.localSize; ++l) {
                        const std::size_t i = wg.globalId(l);
                        if (static_cast<int>(i) >= n) continue;
                        int b = data[i] % numBins;
                        if (b < 0) b += numBins;
                        bins.atomicAdd(static_cast<std::size_t>(b), 1);
                      }
                    })
                    .build();
    inst.verify = [bins, d0](std::string* error) {
      std::vector<int> expected(kBins, 0);
      for (const int v : d0) {
        int b = v % kBins;
        if (b < 0) b += kBins;
        ++expected[static_cast<std::size_t>(b)];
      }
      return verifyInt(*bins, expected, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// nbody — all-pairs gravitational forces; extreme arithmetic intensity.
// ---------------------------------------------------------------------------

Benchmark makeNbody() {
  const char* src = R"(
__kernel void nbody(__global const float* px, __global const float* py,
                    __global const float* pz, __global float* ax,
                    __global float* ay, __global float* az,
                    int n, float eps) {
  int i = get_global_id(0);
  float xi = px[i];
  float yi = py[i];
  float zi = pz[i];
  float fx = 0.0f;
  float fy = 0.0f;
  float fz = 0.0f;
  for (int j = 0; j < n; j++) {
    float dx = px[j] - xi;
    float dy = py[j] - yi;
    float dz = pz[j] - zi;
    float r2 = dx * dx + dy * dy + dz * dz + eps;
    float inv = rsqrt(r2);
    float w = inv * inv * inv;
    fx += dx * w;
    fy += dy * w;
    fz += dz * w;
  }
  ax[i] = fx;
  ay[i] = fy;
  az[i] = fz;
}
)";
  Benchmark bench{"nbody", "vendor", CompiledKernel::compile(src),
                  {512, 1024, 2048, 4096, 8192, 16384},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t n) {
    common::Rng rng(instanceSeed("nbody", n));
    auto px = randomFloatBuffer(n, rng);
    auto py = randomFloatBuffer(n, rng);
    auto pz = randomFloatBuffer(n, rng);
    auto ax = zeroFloatBuffer(n);
    auto ay = zeroFloatBuffer(n);
    auto az = zeroFloatBuffer(n);
    const float eps = 1e-4f;
    const auto x0 = px->toVector<float>();
    const auto y0 = py->toVector<float>();
    const auto z0 = pz->toVector<float>();

    auto forceOne = [](const std::vector<float>& xs,
                       const std::vector<float>& ys,
                       const std::vector<float>& zs, std::size_t i, float eps,
                       float* fx, float* fy, float* fz) {
      const float xi = xs[i], yi = ys[i], zi = zs[i];
      float ax = 0.0f, ay = 0.0f, az = 0.0f;
      for (std::size_t j = 0; j < xs.size(); ++j) {
        const float dx = xs[j] - xi;
        const float dy = ys[j] - yi;
        const float dz = zs[j] - zi;
        const float r2 = dx * dx + dy * dy + dz * dz + eps;
        const float inv = 1.0f / std::sqrt(r2);
        const float w = inv * inv * inv;
        ax += dx * w;
        ay += dy * w;
        az += dz * w;
      }
      *fx = ax;
      *fy = ay;
      *fz = az;
    };

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "nbody")
            .global(n)
            .local(64)
            .arg(px)
            .arg(py)
            .arg(pz)
            .arg(ax)
            .arg(ay)
            .arg(az)
            .arg(static_cast<int>(n))
            .arg(eps)
            .transferAmortization(20.0)  // positions stay resident across timesteps
            .native([forceOne](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto px = args.view<float>(0);
              auto py = args.view<float>(1);
              auto pz = args.view<float>(2);
              auto ax = args.view<float>(3);
              auto ay = args.view<float>(4);
              auto az = args.view<float>(5);
              const int n = args.scalarInt(6);
              const float eps = args.scalarFloat(7);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t i = wg.globalId(l);
                const float xi = px[i], yi = py[i], zi = pz[i];
                float fx = 0.0f, fy = 0.0f, fz = 0.0f;
                for (int j = 0; j < n; ++j) {
                  const auto ju = static_cast<std::size_t>(j);
                  const float dx = px[ju] - xi;
                  const float dy = py[ju] - yi;
                  const float dz = pz[ju] - zi;
                  const float r2 = dx * dx + dy * dy + dz * dz + eps;
                  const float inv = 1.0f / std::sqrt(r2);
                  const float w = inv * inv * inv;
                  fx += dx * w;
                  fy += dy * w;
                  fz += dz * w;
                }
                ax[i] = fx;
                ay[i] = fy;
                az[i] = fz;
              }
            })
            .build();
    inst.verify = [ax, ay, az, x0, y0, z0, eps, forceOne](std::string* error) {
      const std::size_t n = x0.size();
      std::vector<float> ex(n), ey(n), ez(n);
      for (std::size_t i = 0; i < n; ++i) {
        forceOne(x0, y0, z0, i, eps, &ex[i], &ey[i], &ez[i]);
      }
      return verifyFloat(*ax, ex, 1e-3, error) &&
             verifyFloat(*ay, ey, 1e-3, error) &&
             verifyFloat(*az, ez, 1e-3, error);
    };
    return inst;
  };
  return bench;
}

}  // namespace

std::vector<Benchmark> makeVendorBenchmarks() {
  std::vector<Benchmark> out;
  out.push_back(makeVecadd());
  out.push_back(makeSaxpy());
  out.push_back(makeDotprod());
  out.push_back(makeMatmul());
  out.push_back(makeMatvec());
  out.push_back(makeBlackscholes());
  out.push_back(makeMandelbrot());
  out.push_back(makeHistogram());
  out.push_back(makeNbody());
  return out;
}

}  // namespace tp::suite
