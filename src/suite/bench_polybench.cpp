// PolyBench-GPU family: conv2d (3x3 convolution), bicg (column-access GEMV).

#include <cmath>

#include "suite/benchmark.hpp"
#include "suite/suite_util.hpp"

namespace tp::suite {

using runtime::CompiledKernel;
using runtime::TaskBuilder;
using vcl::LaunchArgs;
using vcl::WorkGroupCtx;

namespace {

// ---------------------------------------------------------------------------
// conv2d — 3x3 convolution with interior guard.
// ---------------------------------------------------------------------------

Benchmark makeConv2d() {
  const char* src = R"(
__kernel void conv2d(__global const float* in, __global const float* coef,
                     __global float* out, int width, int height) {
  int idx = get_global_id(0);
  int x = idx % width;
  int y = idx / width;
  float acc = 0.0f;
  if (x > 0 && x < width - 1 && y > 0 && y < height - 1) {
    for (int ky = 0; ky < 3; ky++) {
      for (int kx = 0; kx < 3; kx++) {
        acc += in[idx + (ky - 1) * width + (kx - 1)] * coef[ky * 3 + kx];
      }
    }
  }
  out[idx] = acc;
}
)";
  Benchmark bench{"conv2d", "polybench", CompiledKernel::compile(src),
                  {128, 256, 384, 512, 768, 1024},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t edge) {
    const std::size_t n = edge * edge;
    common::Rng rng(instanceSeed("conv2d", edge));
    auto in = randomFloatBuffer(n, rng);
    auto coef = randomFloatBuffer(9, rng);
    auto out = zeroFloatBuffer(n);
    const auto in0 = in->toVector<float>();
    const auto c0 = coef->toVector<float>();

    auto convAt = [](const std::vector<float>& in,
                     const std::vector<float>& coef, std::size_t idx,
                     std::size_t width, std::size_t height) {
      const std::size_t x = idx % width;
      const std::size_t y = idx / width;
      float acc = 0.0f;
      if (x > 0 && x < width - 1 && y > 0 && y < height - 1) {
        for (int ky = 0; ky < 3; ++ky) {
          for (int kx = 0; kx < 3; ++kx) {
            acc += in[idx + static_cast<std::size_t>(
                                static_cast<long>((ky - 1)) *
                                    static_cast<long>(width) +
                                (kx - 1))] *
                   coef[static_cast<std::size_t>(ky * 3 + kx)];
          }
        }
      }
      return acc;
    };

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "conv2d")
            .global(n)
            .local(64)
            .arg(in)
            .arg(coef)
            .arg(out)
            .arg(static_cast<int>(edge))
            .arg(static_cast<int>(edge))
            .native([convAt](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto in = args.view<float>(0);
              auto coef = args.view<float>(1);
              auto out = args.view<float>(2);
              const auto width = static_cast<std::size_t>(args.scalarInt(3));
              const auto height = static_cast<std::size_t>(args.scalarInt(4));
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t idx = wg.globalId(l);
                const std::size_t x = idx % width;
                const std::size_t y = idx / width;
                float acc = 0.0f;
                if (x > 0 && x < width - 1 && y > 0 && y < height - 1) {
                  for (int ky = 0; ky < 3; ++ky) {
                    for (int kx = 0; kx < 3; ++kx) {
                      const long off = static_cast<long>(ky - 1) *
                                           static_cast<long>(width) +
                                       (kx - 1);
                      acc += in[static_cast<std::size_t>(
                                 static_cast<long>(idx) + off)] *
                             coef[static_cast<std::size_t>(ky * 3 + kx)];
                    }
                  }
                }
                out[idx] = acc;
              }
            })
            .build();
    inst.verify = [out, in0, c0, edge, convAt](std::string* error) {
      const std::size_t n = edge * edge;
      std::vector<float> expected(n);
      for (std::size_t idx = 0; idx < n; ++idx) {
        expected[idx] = convAt(in0, c0, idx, edge, edge);
      }
      return verifyFloat(*out, expected, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

// ---------------------------------------------------------------------------
// bicg — s = Aᵀ r: column-major access pattern (one column per work item).
// ---------------------------------------------------------------------------

Benchmark makeBicg() {
  const char* src = R"(
__kernel void bicg(__global const float* A, __global const float* r,
                   __global float* s, int rows, int cols) {
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < rows; i++) {
    acc += A[i * cols + j] * r[i];
  }
  s[j] = acc;
}
)";
  constexpr std::size_t kRows = 256;
  Benchmark bench{"bicg", "polybench", CompiledKernel::compile(src),
                  {1u << 10, 1u << 12, 1u << 13, 1u << 14, 1u << 15, 1u << 16},
                  nullptr};
  const CompiledKernel compiled = bench.compiled;
  bench.make = [compiled](std::size_t cols) {
    common::Rng rng(instanceSeed("bicg", cols));
    auto A = randomFloatBuffer(kRows * cols, rng);
    auto r = randomFloatBuffer(kRows, rng);
    auto s = zeroFloatBuffer(cols);
    const auto A0 = A->toVector<float>();
    const auto r0 = r->toVector<float>();

    BenchmarkInstance inst;
    inst.task =
        TaskBuilder(compiled, "bicg")
            .global(cols)
            .local(64)
            .arg(A)
            .arg(r)
            .arg(s)
            .arg(static_cast<int>(kRows))
            .arg(static_cast<int>(cols))
            .transferAmortization(10.0)  // BiCG solver iterations
            .native([](const WorkGroupCtx& wg, const LaunchArgs& args) {
              auto A = args.view<float>(0);
              auto r = args.view<float>(1);
              auto s = args.view<float>(2);
              const int rows = args.scalarInt(3);
              const int cols = args.scalarInt(4);
              for (std::size_t l = 0; l < wg.localSize; ++l) {
                const std::size_t j = wg.globalId(l);
                float acc = 0.0f;
                for (int i = 0; i < rows; ++i) {
                  acc += A[static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(cols) +
                           j] *
                         r[static_cast<std::size_t>(i)];
                }
                s[j] = acc;
              }
            })
            .build();
    inst.verify = [s, A0, r0, cols](std::string* error) {
      std::vector<float> expected(cols);
      for (std::size_t j = 0; j < cols; ++j) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < kRows; ++i) {
          acc += A0[i * cols + j] * r0[i];
        }
        expected[j] = acc;
      }
      return verifyFloat(*s, expected, 1e-4, error);
    };
    return inst;
  };
  return bench;
}

}  // namespace

std::vector<Benchmark> makePolybenchBenchmarks() {
  std::vector<Benchmark> out;
  out.push_back(makeConv2d());
  out.push_back(makeBicg());
  return out;
}

}  // namespace tp::suite
