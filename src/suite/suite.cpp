#include "suite/benchmark.hpp"

#include <mutex>

#include "common/error.hpp"

namespace tp::suite {

const std::vector<Benchmark>& allBenchmarks() {
  static const std::vector<Benchmark> benchmarks = [] {
    std::vector<Benchmark> out;
    auto append = [&out](std::vector<Benchmark> family) {
      for (auto& b : family) out.push_back(std::move(b));
    };
    append(makeVendorBenchmarks());    // 9
    append(makeShocBenchmarks());      // 6
    append(makeRodiniaBenchmarks());   // 6
    append(makePolybenchBenchmarks()); // 2
    TP_ASSERT_MSG(out.size() == 23,
                  "suite must have 23 programs, has " << out.size());
    return out;
  }();
  return benchmarks;
}

const Benchmark& benchmarkByName(const std::string& name) {
  for (const auto& b : allBenchmarks()) {
    if (b.name == name) return b;
  }
  TP_THROW("unknown benchmark '" << name << "'");
}

}  // namespace tp::suite
