#pragma once

// Shared helpers for benchmark definitions: deterministic input generation
// and result verification.

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ocl/buffer.hpp"

namespace tp::suite {

/// Deterministic per-benchmark seed derived from (name, problem size).
std::uint64_t instanceSeed(const std::string& name, std::size_t n);

std::shared_ptr<vcl::Buffer> randomFloatBuffer(std::size_t n,
                                               common::Rng& rng,
                                               float lo = -1.0f,
                                               float hi = 1.0f);
std::shared_ptr<vcl::Buffer> randomIntBuffer(std::size_t n, common::Rng& rng,
                                             int lo, int hi);
std::shared_ptr<vcl::Buffer> zeroFloatBuffer(std::size_t n);
std::shared_ptr<vcl::Buffer> zeroIntBuffer(std::size_t n);
std::shared_ptr<vcl::Buffer> zeroUIntBuffer(std::size_t n);

/// Element-wise comparison with mixed absolute/relative tolerance.
bool verifyFloat(const vcl::Buffer& actual, const std::vector<float>& expected,
                 double tolerance, std::string* error);
bool verifyInt(const vcl::Buffer& actual, const std::vector<int>& expected,
               std::string* error);
bool verifyUInt(const vcl::Buffer& actual,
                const std::vector<unsigned>& expected, std::string* error);

}  // namespace tp::suite
