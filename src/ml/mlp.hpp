#pragma once

// Multi-layer perceptron classifier: fully-connected ReLU layers, softmax
// cross-entropy output, Adam optimizer, mini-batch training. This mirrors
// the artificial-neural-network models used in the Insieme task-partitioning
// line of work. Deterministic given (data, seed).

#include <cstdint>

#include "common/rng.hpp"
#include "ml/classifier.hpp"
#include "ml/normalizer.hpp"

namespace tp::ml {

struct MlpOptions {
  std::vector<int> hiddenLayers = {32, 16};
  int epochs = 400;
  int batchSize = 32;
  double learningRate = 3e-3;
  double weightDecay = 1e-5;
};

class MlpClassifier final : public Classifier {
public:
  explicit MlpClassifier(MlpOptions options = {}, std::uint64_t seed = 42)
      : options_(options), rng_(seed) {}

  void train(const Dataset& data) override;
  int predict(const std::vector<double>& x) const override;
  std::vector<double> scores(const std::vector<double>& x) const override;
  std::string name() const override { return "mlp"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  /// Mean cross-entropy on the training set after training (diagnostics).
  double finalTrainingLoss() const noexcept { return finalLoss_; }

private:
  struct Layer {
    int inputs = 0;
    int outputs = 0;
    std::vector<double> weights;  // outputs x inputs, row-major
    std::vector<double> bias;     // outputs
  };

  std::vector<double> forward(const std::vector<double>& z,
                              std::vector<std::vector<double>>* activations)
      const;

  MlpOptions options_;
  common::Rng rng_;
  Normalizer normalizer_;
  std::vector<Layer> layers_;
  double finalLoss_ = 0.0;
};

}  // namespace tp::ml
