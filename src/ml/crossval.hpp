#pragma once

// Model evaluation: k-fold and leave-one-group-out cross-validation.
//
// LOGO-CV is the paper's methodology: to claim the model generalizes to
// *new programs*, every program's samples are predicted by a model trained
// only on the other 22 programs.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace tp::ml {

using ClassifierFactoryFn = std::function<std::unique_ptr<Classifier>()>;

struct HoldoutResult {
  double accuracy = 0.0;
  std::vector<int> predictions;  ///< aligned with the test set
};

/// Train on `train`, evaluate exact-label accuracy on `test`.
HoldoutResult evaluateHoldout(const Dataset& train, const Dataset& test,
                              const ClassifierFactoryFn& factory);

struct CrossValResult {
  double accuracy = 0.0;                     ///< overall exact-label accuracy
  std::map<std::string, double> perGroup;    ///< LOGO only
  /// Prediction for every dataset sample, in dataset order, each made by a
  /// model that never saw that sample's fold/group.
  std::vector<int> predictions;
};

CrossValResult kFoldCrossVal(const Dataset& data, int folds,
                             const ClassifierFactoryFn& factory,
                             std::uint64_t seed = 42);

CrossValResult leaveOneGroupOut(const Dataset& data,
                                const ClassifierFactoryFn& factory);

/// Confusion matrix [true][predicted].
std::vector<std::vector<int>> confusionMatrix(const std::vector<int>& truth,
                                              const std::vector<int>& predicted,
                                              int numClasses);

}  // namespace tp::ml
