#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/error.hpp"

namespace tp::ml {

namespace {

void softmaxInPlace(std::vector<double>& v) {
  const double mx = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (double& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (double& x : v) x /= sum;
}

}  // namespace

std::vector<double> MlpClassifier::forward(
    const std::vector<double>& z,
    std::vector<std::vector<double>>* activations) const {
  std::vector<double> current = z;
  if (activations != nullptr) activations->push_back(current);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(static_cast<std::size_t>(layer.outputs));
    for (int o = 0; o < layer.outputs; ++o) {
      double acc = layer.bias[static_cast<std::size_t>(o)];
      const double* w =
          &layer.weights[static_cast<std::size_t>(o) *
                         static_cast<std::size_t>(layer.inputs)];
      for (int i = 0; i < layer.inputs; ++i) {
        acc += w[i] * current[static_cast<std::size_t>(i)];
      }
      next[static_cast<std::size_t>(o)] = acc;
    }
    const bool isOutput = (l + 1 == layers_.size());
    if (!isOutput) {
      for (double& x : next) x = std::max(0.0, x);  // ReLU
    }
    current = std::move(next);
    if (activations != nullptr) activations->push_back(current);
  }
  softmaxInPlace(current);
  return current;
}

void MlpClassifier::train(const Dataset& data) {
  data.validate();
  TP_REQUIRE(data.size() > 0, "MlpClassifier: empty training set");
  numClasses_ = data.numClasses;
  normalizer_.fit(data.X);
  const auto X = normalizer_.transformAll(data.X);
  const std::size_t n = X.size();
  const int inputDim = static_cast<int>(X.front().size());

  // Build layer sizes: input -> hidden... -> classes.
  std::vector<int> sizes;
  sizes.push_back(inputDim);
  for (const int h : options_.hiddenLayers) {
    TP_REQUIRE(h > 0, "MlpClassifier: non-positive hidden layer size");
    sizes.push_back(h);
  }
  sizes.push_back(numClasses_);

  layers_.clear();
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.inputs = sizes[l];
    layer.outputs = sizes[l + 1];
    layer.weights.resize(static_cast<std::size_t>(layer.inputs) *
                         static_cast<std::size_t>(layer.outputs));
    layer.bias.assign(static_cast<std::size_t>(layer.outputs), 0.0);
    // He initialization.
    const double scale = std::sqrt(2.0 / layer.inputs);
    for (double& w : layer.weights) w = rng_.gaussian(0.0, scale);
    layers_.push_back(std::move(layer));
  }

  // Adam state.
  struct AdamState {
    std::vector<double> mW, vW, mB, vB;
  };
  std::vector<AdamState> adam(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    adam[l].mW.assign(layers_[l].weights.size(), 0.0);
    adam[l].vW.assign(layers_[l].weights.size(), 0.0);
    adam[l].mB.assign(layers_[l].bias.size(), 0.0);
    adam[l].vB.assign(layers_[l].bias.size(), 0.0);
  }
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  long long step = 0;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const std::size_t batchSize =
      std::min<std::size_t>(static_cast<std::size_t>(options_.batchSize), n);

  // Gradient accumulators, same shapes as the layers.
  std::vector<std::vector<double>> gradW(layers_.size()), gradB(layers_.size());

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t start = 0; start < n; start += batchSize) {
      const std::size_t end = std::min(start + batchSize, n);
      const double invBatch = 1.0 / static_cast<double>(end - start);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        gradW[l].assign(layers_[l].weights.size(), 0.0);
        gradB[l].assign(layers_[l].bias.size(), 0.0);
      }

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t idx = order[bi];
        std::vector<std::vector<double>> activations;
        std::vector<double> probs = forward(X[idx], &activations);
        // activations[l] is the input to layer l; activations.back() is the
        // pre-softmax logits of the output layer.
        std::vector<double> delta = probs;  // dL/dlogits for CE + softmax
        delta[static_cast<std::size_t>(data.y[idx])] -= 1.0;

        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const auto& input = activations[l];
          // Accumulate gradients.
          for (int o = 0; o < layer.outputs; ++o) {
            const double d = delta[static_cast<std::size_t>(o)];
            gradB[l][static_cast<std::size_t>(o)] += d * invBatch;
            double* gw = &gradW[l][static_cast<std::size_t>(o) *
                                   static_cast<std::size_t>(layer.inputs)];
            for (int i = 0; i < layer.inputs; ++i) {
              gw[i] += d * input[static_cast<std::size_t>(i)] * invBatch;
            }
          }
          if (l == 0) break;
          // Propagate delta through weights and the previous ReLU.
          std::vector<double> prevDelta(
              static_cast<std::size_t>(layer.inputs), 0.0);
          for (int o = 0; o < layer.outputs; ++o) {
            const double d = delta[static_cast<std::size_t>(o)];
            const double* w =
                &layer.weights[static_cast<std::size_t>(o) *
                               static_cast<std::size_t>(layer.inputs)];
            for (int i = 0; i < layer.inputs; ++i) {
              prevDelta[static_cast<std::size_t>(i)] += d * w[i];
            }
          }
          for (int i = 0; i < layer.inputs; ++i) {
            if (activations[l][static_cast<std::size_t>(i)] <= 0.0) {
              prevDelta[static_cast<std::size_t>(i)] = 0.0;  // ReLU'
            }
          }
          delta = std::move(prevDelta);
        }
      }

      // Adam update.
      ++step;
      const double correction1 = 1.0 - std::pow(beta1, static_cast<double>(step));
      const double correction2 = 1.0 - std::pow(beta2, static_cast<double>(step));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t k = 0; k < layer.weights.size(); ++k) {
          const double g = gradW[l][k] + options_.weightDecay * layer.weights[k];
          adam[l].mW[k] = beta1 * adam[l].mW[k] + (1 - beta1) * g;
          adam[l].vW[k] = beta2 * adam[l].vW[k] + (1 - beta2) * g * g;
          layer.weights[k] -= options_.learningRate *
                              (adam[l].mW[k] / correction1) /
                              (std::sqrt(adam[l].vW[k] / correction2) + eps);
        }
        for (std::size_t k = 0; k < layer.bias.size(); ++k) {
          const double g = gradB[l][k];
          adam[l].mB[k] = beta1 * adam[l].mB[k] + (1 - beta1) * g;
          adam[l].vB[k] = beta2 * adam[l].vB[k] + (1 - beta2) * g * g;
          layer.bias[k] -= options_.learningRate *
                           (adam[l].mB[k] / correction1) /
                           (std::sqrt(adam[l].vB[k] / correction2) + eps);
        }
      }
    }
  }

  // Final training loss (diagnostics / convergence tests).
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto probs = forward(X[i], nullptr);
    loss -= std::log(
        std::max(1e-12, probs[static_cast<std::size_t>(data.y[i])]));
  }
  finalLoss_ = loss / static_cast<double>(n);
}

std::vector<double> MlpClassifier::scores(const std::vector<double>& x) const {
  TP_ASSERT_MSG(!layers_.empty(), "predict called on untrained mlp");
  return forward(normalizer_.transform(x), nullptr);
}

int MlpClassifier::predict(const std::vector<double>& x) const {
  const auto s = scores(x);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

void MlpClassifier::save(std::ostream& os) const {
  os.precision(17);
  os << "mlp " << numClasses_ << ' ' << layers_.size() << "\n";
  normalizer_.save(os);
  for (const auto& layer : layers_) {
    os << layer.inputs << ' ' << layer.outputs << "\n";
    for (const double w : layer.weights) os << w << ' ';
    os << "\n";
    for (const double b : layer.bias) os << b << ' ';
    os << "\n";
  }
}

void MlpClassifier::load(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  is >> tag >> numClasses_ >> count;
  TP_REQUIRE(is && tag == "mlp", "bad mlp header");
  normalizer_.load(is);
  layers_.assign(count, Layer{});
  for (auto& layer : layers_) {
    is >> layer.inputs >> layer.outputs;
    layer.weights.resize(static_cast<std::size_t>(layer.inputs) *
                         static_cast<std::size_t>(layer.outputs));
    layer.bias.resize(static_cast<std::size_t>(layer.outputs));
    for (double& w : layer.weights) is >> w;
    for (double& b : layer.bias) is >> b;
  }
  TP_REQUIRE(static_cast<bool>(is), "truncated mlp data");
}

}  // namespace tp::ml
