#include "ml/normalizer.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace tp::ml {

double Normalizer::compress(double v) {
  return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}

void Normalizer::fit(const std::vector<std::vector<double>>& X) {
  TP_REQUIRE(!X.empty(), "Normalizer::fit: empty matrix");
  const std::size_t d = X.front().size();
  mean_.assign(d, 0.0);
  inverseStd_.assign(d, 1.0);

  for (const auto& row : X) {
    TP_REQUIRE(row.size() == d, "Normalizer::fit: ragged rows");
    for (std::size_t j = 0; j < d; ++j) mean_[j] += compress(row[j]);
  }
  for (double& m : mean_) m /= static_cast<double>(X.size());

  std::vector<double> var(d, 0.0);
  for (const auto& row : X) {
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = compress(row[j]) - mean_[j];
      var[j] += delta * delta;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double stddev = std::sqrt(var[j] / static_cast<double>(X.size()));
    // Degenerate columns: a constant feature has stddev 0, and a
    // *near*-constant one has a stddev that is pure floating-point
    // rounding noise — inverting it would produce a ~1e12 scale factor
    // that amplifies jitter into huge standardized values downstream
    // (distance blow-ups in kNN, saturated/overflowing MLP activations).
    // The threshold is relative to the column's compressed magnitude so
    // large-valued constant columns are caught too; such columns carry no
    // signal and map to exactly 0.
    const double noiseFloor = 1e-9 * std::max(1.0, std::fabs(mean_[j]));
    inverseStd_[j] =
        std::isfinite(stddev) && stddev > noiseFloor ? 1.0 / stddev : 0.0;
  }
}

std::vector<double> Normalizer::transform(const std::vector<double>& x) const {
  TP_ASSERT(fitted());
  TP_REQUIRE(x.size() == mean_.size(),
             "Normalizer::transform: expected " << mean_.size()
                                                << " features, got "
                                                << x.size());
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[j] = (compress(x[j]) - mean_[j]) * inverseStd_[j];
  }
  return out;
}

std::vector<std::vector<double>> Normalizer::transformAll(
    const std::vector<std::vector<double>>& X) const {
  std::vector<std::vector<double>> out;
  out.reserve(X.size());
  for (const auto& row : X) out.push_back(transform(row));
  return out;
}

void Normalizer::save(std::ostream& os) const {
  os.precision(17);
  os << "normalizer " << mean_.size() << "\n";
  for (std::size_t j = 0; j < mean_.size(); ++j) {
    os << mean_[j] << ' ' << inverseStd_[j] << "\n";
  }
}

void Normalizer::load(std::istream& is) {
  std::string tag;
  std::size_t d = 0;
  is >> tag >> d;
  TP_REQUIRE(is && tag == "normalizer", "bad normalizer header");
  mean_.assign(d, 0.0);
  inverseStd_.assign(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) is >> mean_[j] >> inverseStd_[j];
  TP_REQUIRE(static_cast<bool>(is), "truncated normalizer data");
  for (std::size_t j = 0; j < d; ++j) {
    TP_REQUIRE(std::isfinite(mean_[j]) && std::isfinite(inverseStd_[j]),
               "normalizer: non-finite parameters for feature " << j);
  }
}

}  // namespace tp::ml
