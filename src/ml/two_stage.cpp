#include "ml/two_stage.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tp::ml {

TwoStageClassifier::TwoStageClassifier(std::vector<int> labelToFamily,
                                       ClassifierFactory stage1Factory,
                                       ClassifierFactory stage2Factory)
    : labelToFamily_(std::move(labelToFamily)),
      stage1Factory_(std::move(stage1Factory)),
      stage2Factory_(std::move(stage2Factory)) {
  TP_REQUIRE(!labelToFamily_.empty(), "TwoStage: empty label→family map");
  for (const int f : labelToFamily_) {
    TP_REQUIRE(f >= 0, "TwoStage: negative family id");
    numFamilies_ = std::max(numFamilies_, f + 1);
  }
}

void TwoStageClassifier::train(const Dataset& data) {
  data.validate();
  TP_REQUIRE(data.numClasses <= static_cast<int>(labelToFamily_.size()),
             "TwoStage: dataset has labels outside the family map");
  numClasses_ = static_cast<int>(labelToFamily_.size());

  // Stage 1: same features, family labels.
  Dataset familyData;
  familyData.featureNames = data.featureNames;
  familyData.numClasses = numFamilies_;
  for (std::size_t i = 0; i < data.size(); ++i) {
    familyData.add(data.X[i],
                   labelToFamily_[static_cast<std::size_t>(data.y[i])],
                   data.groups[i]);
  }
  familyData.numClasses = numFamilies_;
  stage1_ = stage1Factory_();
  stage1_->train(familyData);

  // Stage 2: one refiner per family over that family's samples.
  stage2_.clear();
  stage2_.resize(static_cast<std::size_t>(numFamilies_));
  familyFallbackLabel_.assign(static_cast<std::size_t>(numFamilies_), 0);

  for (int f = 0; f < numFamilies_; ++f) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (labelToFamily_[static_cast<std::size_t>(data.y[i])] == f) {
        indices.push_back(i);
      }
    }
    // Fallback label: the family's most frequent fine label in training, or
    // the first label belonging to the family if unseen.
    int fallback = -1;
    if (!indices.empty()) {
      Dataset sub = data.subset(indices);
      sub.numClasses = numClasses_;
      fallback = sub.majorityLabel();
      const bool multipleLabels =
          std::any_of(sub.y.begin(), sub.y.end(),
                      [&](int label) { return label != sub.y.front(); });
      if (multipleLabels) {
        stage2_[static_cast<std::size_t>(f)] = stage2Factory_();
        stage2_[static_cast<std::size_t>(f)]->train(sub);
      }
    } else {
      for (std::size_t label = 0; label < labelToFamily_.size(); ++label) {
        if (labelToFamily_[label] == f) {
          fallback = static_cast<int>(label);
          break;
        }
      }
    }
    TP_ASSERT(fallback >= 0);
    familyFallbackLabel_[static_cast<std::size_t>(f)] = fallback;
  }
}

int TwoStageClassifier::predict(const std::vector<double>& x) const {
  TP_ASSERT_MSG(stage1_ != nullptr, "predict called on untrained two-stage");
  const int family = stage1_->predict(x);
  const auto& refiner = stage2_[static_cast<std::size_t>(family)];
  if (refiner == nullptr) {
    return familyFallbackLabel_[static_cast<std::size_t>(family)];
  }
  return refiner->predict(x);
}

void TwoStageClassifier::save(std::ostream&) const {
  TP_THROW("TwoStageClassifier does not support serialization; "
           "persist the underlying stage models instead");
}

void TwoStageClassifier::load(std::istream&) {
  TP_THROW("TwoStageClassifier does not support serialization");
}

}  // namespace tp::ml
