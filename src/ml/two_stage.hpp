#pragma once

// Two-stage hierarchical model, following the structure used in the
// Insieme task-partitioning work: a first-stage classifier picks a coarse
// partitioning *family* (e.g. CPU-only / GPU-only / mixed), then a
// per-family second-stage classifier refines to the exact partitioning.
//
// The label→family mapping is supplied by the caller (the runtime derives
// it from the partitioning space), keeping the learner agnostic to
// scheduling semantics.

#include <functional>
#include <memory>

#include "ml/classifier.hpp"

namespace tp::ml {

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

class TwoStageClassifier final : public Classifier {
public:
  /// `labelToFamily[label]` gives the coarse family of each fine label.
  TwoStageClassifier(std::vector<int> labelToFamily,
                     ClassifierFactory stage1Factory,
                     ClassifierFactory stage2Factory);

  void train(const Dataset& data) override;
  int predict(const std::vector<double>& x) const override;
  std::string name() const override { return "two_stage"; }

  /// Serialization is not supported for the composite model (the factories
  /// are arbitrary callables); train at startup instead.
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  int numFamilies() const noexcept { return numFamilies_; }

private:
  std::vector<int> labelToFamily_;
  int numFamilies_ = 0;
  ClassifierFactory stage1Factory_;
  ClassifierFactory stage2Factory_;
  std::unique_ptr<Classifier> stage1_;
  /// One refiner per family; null when a family has a single label or no
  /// training samples (falls back to the family's majority label).
  std::vector<std::unique_ptr<Classifier>> stage2_;
  std::vector<int> familyFallbackLabel_;
};

}  // namespace tp::ml
