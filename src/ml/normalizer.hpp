#pragma once

// Feature normalization. Raw features span many orders of magnitude
// (problem sizes 2^10..2^24, op counts, byte counts), so every learner
// first applies signed log compression then per-feature standardization.
// Fitted parameters serialize with the model.

#include <iosfwd>
#include <vector>

namespace tp::ml {

class Normalizer {
public:
  /// Fit per-feature mean/stddev of log-compressed values.
  void fit(const std::vector<std::vector<double>>& X);

  bool fitted() const noexcept { return !mean_.empty(); }
  std::size_t numFeatures() const noexcept { return mean_.size(); }

  std::vector<double> transform(const std::vector<double>& x) const;
  std::vector<std::vector<double>> transformAll(
      const std::vector<std::vector<double>>& X) const;

  void save(std::ostream& os) const;
  void load(std::istream& is);

  /// Signed log1p compression used before standardization.
  static double compress(double v);

private:
  std::vector<double> mean_;
  std::vector<double> inverseStd_;
};

}  // namespace tp::ml
