#pragma once

// Training data container shared by all learners.
//
// One sample = the combined (static ⊕ runtime) feature vector of a kernel
// launch, labeled with the index of the best-performing task partitioning
// and tagged with the program name (the "group") so that evaluation can
// hold out entire programs — predicting for programs the model has never
// seen, as the paper's methodology requires.

#include <cstddef>
#include <string>
#include <vector>

namespace tp::ml {

struct Dataset {
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  std::vector<std::string> groups;       ///< program name per sample
  std::vector<std::string> featureNames;
  int numClasses = 0;

  std::size_t size() const noexcept { return X.size(); }
  std::size_t numFeatures() const noexcept {
    return X.empty() ? featureNames.size() : X.front().size();
  }

  void add(std::vector<double> x, int label, std::string group);

  /// Subset by sample indices (keeps schema and numClasses).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Sorted unique group names.
  std::vector<std::string> uniqueGroups() const;

  /// Indices of samples (not) belonging to `group`.
  std::vector<std::size_t> indicesOfGroup(const std::string& group) const;
  std::vector<std::size_t> indicesNotOfGroup(const std::string& group) const;

  /// Majority label (ties broken toward the smaller label).
  int majorityLabel() const;

  /// Structural validation; throws tp::Error on ragged rows or bad labels.
  void validate() const;
};

}  // namespace tp::ml
