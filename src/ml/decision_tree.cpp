#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/error.hpp"

namespace tp::ml {

namespace {

double giniFromCounts(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sumSq = 0.0;
  for (const double c : counts) sumSq += c * c;
  return 1.0 - sumSq / (total * total);
}

}  // namespace

void DecisionTree::train(const Dataset& data) {
  data.validate();
  TP_REQUIRE(data.size() > 0, "DecisionTree: empty training set");
  numClasses_ = data.numClasses;
  nodes_.clear();

  std::vector<std::vector<double>> X;
  if (options_.normalizeInputs) {
    normalizer_.fit(data.X);
    X = normalizer_.transformAll(data.X);
  } else {
    X = data.X;
  }

  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  build(X, data.y, indices, 0);
}

int DecisionTree::build(const std::vector<std::vector<double>>& X,
                        const std::vector<int>& y,
                        std::vector<std::size_t>& indices, int depth) {
  TP_ASSERT(!indices.empty());
  const std::size_t n = indices.size();
  const std::size_t d = X.front().size();

  std::vector<double> classCounts(static_cast<std::size_t>(numClasses_), 0.0);
  for (const std::size_t i : indices) ++classCounts[static_cast<std::size_t>(y[i])];
  const double parentGini = giniFromCounts(classCounts, static_cast<double>(n));

  Node node;
  node.label = static_cast<int>(
      std::max_element(classCounts.begin(), classCounts.end()) -
      classCounts.begin());
  node.classFractions.resize(classCounts.size());
  for (std::size_t c = 0; c < classCounts.size(); ++c) {
    node.classFractions[c] = classCounts[c] / static_cast<double>(n);
  }

  const bool pure = parentGini <= 1e-12;
  if (pure || depth >= options_.maxDepth ||
      n < 2 * static_cast<std::size_t>(options_.minSamplesLeaf)) {
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size() - 1);
  }

  // Candidate features: all or a random subset (random-forest mode).
  std::vector<std::size_t> candidates(d);
  std::iota(candidates.begin(), candidates.end(), 0);
  if (options_.featuresPerSplit > 0 &&
      static_cast<std::size_t>(options_.featuresPerSplit) < d) {
    rng_.shuffle(candidates);
    candidates.resize(static_cast<std::size_t>(options_.featuresPerSplit));
  }

  double bestGain = 1e-10;
  std::size_t bestFeature = 0;
  double bestThreshold = 0.0;

  std::vector<std::size_t> sorted = indices;
  std::vector<double> leftCounts(classCounts.size());
  for (const std::size_t f : candidates) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) { return X[a][f] < X[b][f]; });
    std::fill(leftCounts.begin(), leftCounts.end(), 0.0);
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const std::size_t i = sorted[k];
      ++leftCounts[static_cast<std::size_t>(y[i])];
      const double vk = X[i][f];
      const double vnext = X[sorted[k + 1]][f];
      if (vnext - vk <= 1e-12) continue;  // no threshold between equal values
      const double nl = static_cast<double>(k + 1);
      const double nr = static_cast<double>(n - k - 1);
      if (nl < options_.minSamplesLeaf || nr < options_.minSamplesLeaf) {
        continue;
      }
      double sumSqL = 0.0, sumSqR = 0.0;
      for (std::size_t c = 0; c < leftCounts.size(); ++c) {
        const double l = leftCounts[c];
        const double r = classCounts[c] - l;
        sumSqL += l * l;
        sumSqR += r * r;
      }
      const double giniL = 1.0 - sumSqL / (nl * nl);
      const double giniR = 1.0 - sumSqR / (nr * nr);
      const double gain =
          parentGini - (nl * giniL + nr * giniR) / static_cast<double>(n);
      if (gain > bestGain) {
        bestGain = gain;
        bestFeature = f;
        bestThreshold = 0.5 * (vk + vnext);
      }
    }
  }

  if (bestGain <= 1e-10) {  // no useful split found
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size() - 1);
  }

  std::vector<std::size_t> leftIdx, rightIdx;
  for (const std::size_t i : indices) {
    (X[i][bestFeature] <= bestThreshold ? leftIdx : rightIdx).push_back(i);
  }
  TP_ASSERT(!leftIdx.empty() && !rightIdx.empty());

  node.feature = static_cast<int>(bestFeature);
  node.threshold = bestThreshold;
  nodes_.push_back(std::move(node));
  const int self = static_cast<int>(nodes_.size() - 1);
  const int left = build(X, y, leftIdx, depth + 1);
  const int right = build(X, y, rightIdx, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

const DecisionTree::Node& DecisionTree::descend(
    const std::vector<double>& x) const {
  TP_ASSERT_MSG(!nodes_.empty(), "predict called on untrained tree");
  const std::vector<double> z =
      options_.normalizeInputs ? normalizer_.transform(x) : x;
  const Node* node = &nodes_.front();
  while (node->feature >= 0) {
    const double v = z[static_cast<std::size_t>(node->feature)];
    node = &nodes_[static_cast<std::size_t>(v <= node->threshold
                                                ? node->left
                                                : node->right)];
  }
  return *node;
}

int DecisionTree::predict(const std::vector<double>& x) const {
  return descend(x).label;
}

std::vector<double> DecisionTree::scores(const std::vector<double>& x) const {
  return descend(x).classFractions;
}

int DecisionTree::depth() const {
  // Depth by recomputation over the implicit tree structure.
  std::vector<int> depth(nodes_.size(), 0);
  int maxDepth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& node = nodes_[i];
    if (node.feature >= 0) {
      depth[static_cast<std::size_t>(node.left)] = depth[i] + 1;
      depth[static_cast<std::size_t>(node.right)] = depth[i] + 1;
      maxDepth = std::max(maxDepth, depth[i] + 1);
    }
  }
  return maxDepth;
}

void DecisionTree::save(std::ostream& os) const {
  os.precision(17);
  os << "tree " << numClasses_ << ' ' << nodes_.size() << ' '
     << (options_.normalizeInputs ? 1 : 0) << "\n";
  for (const auto& n : nodes_) {
    os << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
       << ' ' << n.label;
    for (const double f : n.classFractions) os << ' ' << f;
    os << "\n";
  }
  if (options_.normalizeInputs) normalizer_.save(os);
}

void DecisionTree::load(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  int normalize = 0;
  is >> tag >> numClasses_ >> count >> normalize;
  TP_REQUIRE(is && tag == "tree", "bad decision-tree header");
  options_.normalizeInputs = normalize != 0;
  nodes_.assign(count, Node{});
  for (auto& n : nodes_) {
    is >> n.feature >> n.threshold >> n.left >> n.right >> n.label;
    n.classFractions.assign(static_cast<std::size_t>(numClasses_), 0.0);
    for (double& f : n.classFractions) is >> f;
  }
  if (options_.normalizeInputs) normalizer_.load(is);
  TP_REQUIRE(static_cast<bool>(is), "truncated decision-tree data");
}

}  // namespace tp::ml
