#include "ml/crossval.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tp::ml {

HoldoutResult evaluateHoldout(const Dataset& train, const Dataset& test,
                              const ClassifierFactoryFn& factory) {
  TP_REQUIRE(train.size() > 0 && test.size() > 0,
             "evaluateHoldout: empty train or test set");
  auto model = factory();
  Dataset trainCopy = train;
  trainCopy.numClasses = std::max(train.numClasses, test.numClasses);
  model->train(trainCopy);

  HoldoutResult result;
  std::size_t correct = 0;
  result.predictions.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    const int predicted = model->predict(test.X[i]);
    result.predictions.push_back(predicted);
    if (predicted == test.y[i]) ++correct;
  }
  result.accuracy = static_cast<double>(correct) / static_cast<double>(test.size());
  return result;
}

CrossValResult kFoldCrossVal(const Dataset& data, int folds,
                             const ClassifierFactoryFn& factory,
                             std::uint64_t seed) {
  data.validate();
  TP_REQUIRE(folds >= 2, "kFoldCrossVal: need at least 2 folds");
  TP_REQUIRE(data.size() >= static_cast<std::size_t>(folds),
             "kFoldCrossVal: fewer samples than folds");

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  common::Rng rng(seed);
  rng.shuffle(order);

  CrossValResult result;
  result.predictions.assign(data.size(), -1);
  std::size_t correct = 0;

  for (int f = 0; f < folds; ++f) {
    std::vector<std::size_t> trainIdx, testIdx;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(folds)) == f) {
        testIdx.push_back(order[i]);
      } else {
        trainIdx.push_back(order[i]);
      }
    }
    Dataset train = data.subset(trainIdx);
    train.numClasses = data.numClasses;
    Dataset test = data.subset(testIdx);
    test.numClasses = data.numClasses;
    const HoldoutResult fold = evaluateHoldout(train, test, factory);
    for (std::size_t i = 0; i < testIdx.size(); ++i) {
      result.predictions[testIdx[i]] = fold.predictions[i];
      if (fold.predictions[i] == data.y[testIdx[i]]) ++correct;
    }
  }
  result.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
  return result;
}

CrossValResult leaveOneGroupOut(const Dataset& data,
                                const ClassifierFactoryFn& factory) {
  data.validate();
  const auto groups = data.uniqueGroups();
  TP_REQUIRE(groups.size() >= 2, "leaveOneGroupOut: need >= 2 groups");

  CrossValResult result;
  result.predictions.assign(data.size(), -1);
  std::size_t correct = 0;

  for (const auto& group : groups) {
    const auto testIdx = data.indicesOfGroup(group);
    const auto trainIdx = data.indicesNotOfGroup(group);
    Dataset train = data.subset(trainIdx);
    train.numClasses = data.numClasses;
    Dataset test = data.subset(testIdx);
    test.numClasses = data.numClasses;
    const HoldoutResult held = evaluateHoldout(train, test, factory);
    std::size_t groupCorrect = 0;
    for (std::size_t i = 0; i < testIdx.size(); ++i) {
      result.predictions[testIdx[i]] = held.predictions[i];
      if (held.predictions[i] == data.y[testIdx[i]]) {
        ++correct;
        ++groupCorrect;
      }
    }
    result.perGroup[group] =
        static_cast<double>(groupCorrect) / static_cast<double>(testIdx.size());
  }
  result.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
  return result;
}

std::vector<std::vector<int>> confusionMatrix(const std::vector<int>& truth,
                                              const std::vector<int>& predicted,
                                              int numClasses) {
  TP_REQUIRE(truth.size() == predicted.size(),
             "confusionMatrix: size mismatch");
  std::vector<std::vector<int>> m(
      static_cast<std::size_t>(numClasses),
      std::vector<int>(static_cast<std::size_t>(numClasses), 0));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    TP_ASSERT(truth[i] >= 0 && truth[i] < numClasses);
    TP_ASSERT(predicted[i] >= 0 && predicted[i] < numClasses);
    ++m[static_cast<std::size_t>(truth[i])][static_cast<std::size_t>(predicted[i])];
  }
  return m;
}

}  // namespace tp::ml
