#pragma once

// Common interface of all task-partitioning predictors.
//
// Models map a combined feature vector to a partitioning class index (the
// discretized partitioning space lives in src/runtime/partitioning.hpp; the
// learners are agnostic to what the labels mean).

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace tp::ml {

class Classifier {
public:
  virtual ~Classifier() = default;

  virtual void train(const Dataset& data) = 0;
  virtual int predict(const std::vector<double>& x) const = 0;
  virtual std::string name() const = 0;

  /// Per-class scores (higher = more likely); default implementations may
  /// return a one-hot vector for models without calibrated scores.
  virtual std::vector<double> scores(const std::vector<double>& x) const;

  virtual void save(std::ostream& os) const = 0;
  virtual void load(std::istream& is) = 0;

  /// Convenience file IO (text format). Throws tp::IoError on failure.
  void saveFile(const std::string& path) const;
  void loadFile(const std::string& path);

  int numClasses() const noexcept { return numClasses_; }

protected:
  int numClasses_ = 0;
};

/// Factory. Specs: "tree", "forest", "knn", "mlp", "mostfreq".
/// Hyperparameters use a suffix syntax, e.g. "forest:64" (trees),
/// "knn:7" (neighbors), "mlp:32,32" (hidden layers).
std::unique_ptr<Classifier> makeClassifier(const std::string& spec,
                                           std::uint64_t seed = 42);

/// Load any classifier saved with save(); dispatches on the header tag.
/// The stream form reads from the current position (fleet snapshots and
/// model fan-out carry serialized models inside larger messages).
std::unique_ptr<Classifier> loadClassifier(std::istream& is);
std::unique_ptr<Classifier> loadClassifierFile(const std::string& path);

}  // namespace tp::ml
