#pragma once

// Random forest: bagged CART trees with per-node feature subsampling and
// soft (class-fraction) voting. The default model of the reproduction —
// robust on the small, heterogeneous training sets the pipeline produces
// (a few hundred launches across 23 programs).

#include <memory>

#include "ml/decision_tree.hpp"

namespace tp::ml {

struct ForestOptions {
  int numTrees = 64;
  int maxDepth = 16;
  int minSamplesLeaf = 1;
  /// 0 = sqrt(numFeatures), chosen at train time.
  int featuresPerSplit = 0;
};

class RandomForest final : public Classifier {
public:
  explicit RandomForest(ForestOptions options = {}, std::uint64_t seed = 42)
      : options_(options), rng_(seed) {}

  void train(const Dataset& data) override;
  int predict(const std::vector<double>& x) const override;
  std::vector<double> scores(const std::vector<double>& x) const override;
  std::string name() const override { return "forest"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  std::size_t numTrees() const noexcept { return trees_.size(); }

private:
  ForestOptions options_;
  common::Rng rng_;
  Normalizer normalizer_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace tp::ml
