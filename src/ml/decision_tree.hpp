#pragma once

// CART decision tree (Gini impurity, axis-aligned splits).
//
// Deterministic given (data, seed). Supports per-node feature subsampling
// so RandomForest can reuse it directly as its base learner.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "ml/classifier.hpp"
#include "ml/normalizer.hpp"

namespace tp::ml {

struct TreeOptions {
  int maxDepth = 16;
  int minSamplesLeaf = 1;
  /// Features examined per split; 0 = all (plain CART), >0 = random subset
  /// (random-forest mode).
  int featuresPerSplit = 0;
  /// Skip input normalization (the forest normalizes once on the outside).
  bool normalizeInputs = true;
};

class DecisionTree final : public Classifier {
public:
  explicit DecisionTree(TreeOptions options = {}, std::uint64_t seed = 42)
      : options_(options), rng_(seed) {}

  void train(const Dataset& data) override;
  int predict(const std::vector<double>& x) const override;
  std::vector<double> scores(const std::vector<double>& x) const override;
  std::string name() const override { return "tree"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  /// Number of nodes (diagnostics/tests).
  std::size_t nodeCount() const noexcept { return nodes_.size(); }
  int depth() const;

private:
  struct Node {
    int feature = -1;      ///< -1 for leaves
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int label = -1;              ///< majority label (valid for all nodes)
    std::vector<double> classFractions;  ///< leaf class distribution
  };

  int build(const std::vector<std::vector<double>>& X,
            const std::vector<int>& y, std::vector<std::size_t>& indices,
            int depth);
  const Node& descend(const std::vector<double>& x) const;

  TreeOptions options_;
  common::Rng rng_;
  Normalizer normalizer_;
  std::vector<Node> nodes_;
};

}  // namespace tp::ml
