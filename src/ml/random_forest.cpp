#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace tp::ml {

void RandomForest::train(const Dataset& data) {
  data.validate();
  TP_REQUIRE(data.size() > 0, "RandomForest: empty training set");
  numClasses_ = data.numClasses;
  trees_.clear();

  normalizer_.fit(data.X);
  Dataset normalized;
  normalized.featureNames = data.featureNames;
  normalized.numClasses = data.numClasses;
  normalized.X = normalizer_.transformAll(data.X);
  normalized.y = data.y;
  normalized.groups = data.groups;

  const int mtry =
      options_.featuresPerSplit > 0
          ? options_.featuresPerSplit
          : std::max(1, static_cast<int>(std::round(
                            std::sqrt(static_cast<double>(data.numFeatures())))));

  trees_.reserve(static_cast<std::size_t>(options_.numTrees));
  for (int t = 0; t < options_.numTrees; ++t) {
    // Bootstrap sample (with replacement).
    std::vector<std::size_t> sample(normalized.size());
    for (auto& s : sample) s = rng_.below(normalized.size());
    Dataset bag = normalized.subset(sample);
    bag.numClasses = numClasses_;  // keep full class range even if unseen

    TreeOptions treeOptions;
    treeOptions.maxDepth = options_.maxDepth;
    treeOptions.minSamplesLeaf = options_.minSamplesLeaf;
    treeOptions.featuresPerSplit = mtry;
    treeOptions.normalizeInputs = false;  // normalized once, here
    auto tree = std::make_unique<DecisionTree>(treeOptions, rng_());
    tree->train(bag);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::scores(const std::vector<double>& x) const {
  TP_ASSERT_MSG(!trees_.empty(), "predict called on untrained forest");
  const std::vector<double> z = normalizer_.transform(x);
  std::vector<double> votes(static_cast<std::size_t>(numClasses_), 0.0);
  for (const auto& tree : trees_) {
    const auto s = tree->scores(z);
    for (std::size_t c = 0; c < votes.size(); ++c) votes[c] += s[c];
  }
  for (double& v : votes) v /= static_cast<double>(trees_.size());
  return votes;
}

int RandomForest::predict(const std::vector<double>& x) const {
  const auto s = scores(x);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

void RandomForest::save(std::ostream& os) const {
  os << "forest " << numClasses_ << ' ' << trees_.size() << "\n";
  normalizer_.save(os);
  for (const auto& tree : trees_) tree->save(os);
}

void RandomForest::load(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  is >> tag >> numClasses_ >> count;
  TP_REQUIRE(is && tag == "forest", "bad random-forest header");
  normalizer_.load(is);
  trees_.clear();
  for (std::size_t t = 0; t < count; ++t) {
    auto tree = std::make_unique<DecisionTree>();
    tree->load(is);
    trees_.push_back(std::move(tree));
  }
}

}  // namespace tp::ml
