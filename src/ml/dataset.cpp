#include "ml/dataset.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace tp::ml {

void Dataset::add(std::vector<double> x, int label, std::string group) {
  TP_REQUIRE(X.empty() || x.size() == X.front().size(),
             "Dataset::add: inconsistent feature count");
  TP_REQUIRE(label >= 0, "Dataset::add: negative label");
  X.push_back(std::move(x));
  y.push_back(label);
  groups.push_back(std::move(group));
  numClasses = std::max(numClasses, label + 1);
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.featureNames = featureNames;
  out.numClasses = numClasses;
  out.X.reserve(indices.size());
  for (const std::size_t i : indices) {
    TP_ASSERT(i < size());
    out.X.push_back(X[i]);
    out.y.push_back(y[i]);
    out.groups.push_back(groups[i]);
  }
  return out;
}

std::vector<std::string> Dataset::uniqueGroups() const {
  std::set<std::string> s(groups.begin(), groups.end());
  return {s.begin(), s.end()};
}

std::vector<std::size_t> Dataset::indicesOfGroup(
    const std::string& group) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < size(); ++i) {
    if (groups[i] == group) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dataset::indicesNotOfGroup(
    const std::string& group) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < size(); ++i) {
    if (groups[i] != group) out.push_back(i);
  }
  return out;
}

int Dataset::majorityLabel() const {
  TP_ASSERT(!y.empty());
  std::vector<int> counts(static_cast<std::size_t>(numClasses), 0);
  for (const int label : y) ++counts[static_cast<std::size_t>(label)];
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

void Dataset::validate() const {
  TP_REQUIRE(X.size() == y.size() && y.size() == groups.size(),
             "Dataset: parallel arrays out of sync");
  for (const auto& row : X) {
    TP_REQUIRE(row.size() == numFeatures(), "Dataset: ragged feature rows");
  }
  for (const int label : y) {
    TP_REQUIRE(label >= 0 && label < numClasses,
               "Dataset: label " << label << " outside [0, " << numClasses
                                 << ")");
  }
}

}  // namespace tp::ml
