#pragma once

// Principal component analysis via cyclic Jacobi eigendecomposition of the
// covariance matrix. Used as an optional dimensionality-reduction step in
// the feature-set ablation (the full Insieme pipeline applied PCA before
// its neural models).

#include <iosfwd>
#include <vector>

namespace tp::ml {

class Pca {
public:
  /// Fit on raw rows; keeps the smallest number of components whose
  /// cumulative explained variance reaches `varianceFraction` (or exactly
  /// `fixedComponents` if > 0).
  void fit(const std::vector<std::vector<double>>& X,
           double varianceFraction = 0.99, int fixedComponents = 0);

  bool fitted() const noexcept { return !components_.empty(); }
  std::size_t inputDim() const noexcept { return mean_.size(); }
  std::size_t numComponents() const noexcept { return components_.size(); }

  std::vector<double> transform(const std::vector<double>& x) const;
  std::vector<std::vector<double>> transformAll(
      const std::vector<std::vector<double>>& X) const;

  /// Explained variance (eigenvalue) of each kept component, descending.
  const std::vector<double>& explainedVariance() const noexcept {
    return eigenvalues_;
  }

  void save(std::ostream& os) const;
  void load(std::istream& is);

  /// Eigendecomposition of a symmetric matrix (exposed for tests):
  /// returns eigenvalues (descending) and matching eigenvectors (rows).
  static void symmetricEigen(std::vector<std::vector<double>> a,
                             std::vector<double>& eigenvalues,
                             std::vector<std::vector<double>>& eigenvectors);

private:
  std::vector<double> mean_;
  std::vector<std::vector<double>> components_;  ///< rows = components
  std::vector<double> eigenvalues_;
};

}  // namespace tp::ml
