#include "ml/classifier.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/str.hpp"
#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "ml/mlp.hpp"
#include "ml/random_forest.hpp"

namespace tp::ml {

namespace {

/// Baseline: always predicts the most frequent training label. This is the
/// floor any learned model must beat.
class MostFrequentClassifier final : public Classifier {
public:
  void train(const Dataset& data) override {
    data.validate();
    TP_REQUIRE(data.size() > 0, "MostFrequent: empty training set");
    numClasses_ = data.numClasses;
    label_ = data.majorityLabel();
  }
  int predict(const std::vector<double>&) const override { return label_; }
  std::string name() const override { return "mostfreq"; }
  void save(std::ostream& os) const override {
    os << "mostfreq " << numClasses_ << ' ' << label_ << "\n";
  }
  void load(std::istream& is) override {
    std::string tag;
    is >> tag >> numClasses_ >> label_;
    TP_REQUIRE(is && tag == "mostfreq", "bad mostfreq header");
  }

private:
  int label_ = 0;
};

}  // namespace

std::vector<double> Classifier::scores(const std::vector<double>& x) const {
  std::vector<double> out(static_cast<std::size_t>(numClasses_), 0.0);
  const int label = predict(x);
  TP_ASSERT(label >= 0 && label < numClasses_);
  out[static_cast<std::size_t>(label)] = 1.0;
  return out;
}

void Classifier::saveFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open model file for writing: " + path);
  save(os);
  if (!os) throw IoError("write failed: " + path);
}

void Classifier::loadFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open model file: " + path);
  load(is);
}

std::unique_ptr<Classifier> makeClassifier(const std::string& spec,
                                           std::uint64_t seed) {
  const auto parts = common::split(spec, ':');
  const std::string& kind = parts[0];
  const std::string arg = parts.size() > 1 ? parts[1] : "";

  if (kind == "tree") {
    TreeOptions options;
    if (!arg.empty()) options.maxDepth = std::stoi(arg);
    return std::make_unique<DecisionTree>(options, seed);
  }
  if (kind == "forest") {
    ForestOptions options;
    if (!arg.empty()) options.numTrees = std::stoi(arg);
    return std::make_unique<RandomForest>(options, seed);
  }
  if (kind == "knn") {
    return std::make_unique<KnnClassifier>(arg.empty() ? 5 : std::stoi(arg));
  }
  if (kind == "mlp") {
    MlpOptions options;
    if (!arg.empty()) {
      options.hiddenLayers.clear();
      for (const auto& layer : common::split(arg, ',')) {
        options.hiddenLayers.push_back(std::stoi(layer));
      }
    }
    return std::make_unique<MlpClassifier>(options, seed);
  }
  if (kind == "mostfreq") return std::make_unique<MostFrequentClassifier>();

  TP_THROW("unknown classifier spec '" << spec
                                       << "' (expected tree/forest/knn/mlp/"
                                          "mostfreq)");
}

std::unique_ptr<Classifier> loadClassifier(std::istream& is) {
  // Peek the header tag, then rewind so each model's load() sees its own
  // header (models validate it themselves).
  const std::istream::pos_type start = is.tellg();
  std::string tag;
  is >> tag;
  is.clear();
  is.seekg(start);
  std::unique_ptr<Classifier> model;
  if (tag == "tree") {
    model = std::make_unique<DecisionTree>();
  } else if (tag == "forest") {
    model = std::make_unique<RandomForest>();
  } else if (tag == "knn") {
    model = std::make_unique<KnnClassifier>();
  } else if (tag == "mlp") {
    model = std::make_unique<MlpClassifier>();
  } else if (tag == "mostfreq") {
    model = std::make_unique<MostFrequentClassifier>();
  } else {
    throw IoError("unknown model tag '" + tag + "'");
  }
  model->load(is);
  return model;
}

std::unique_ptr<Classifier> loadClassifierFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open model file: " + path);
  try {
    return loadClassifier(is);
  } catch (const IoError& e) {
    throw IoError(std::string(e.what()) + " in " + path);
  }
}

}  // namespace tp::ml
