#include "ml/pca.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/error.hpp"

namespace tp::ml {

void Pca::symmetricEigen(std::vector<std::vector<double>> a,
                         std::vector<double>& eigenvalues,
                         std::vector<std::vector<double>>& eigenvectors) {
  const std::size_t n = a.size();
  TP_ASSERT(n > 0);
  for (const auto& row : a) TP_ASSERT(row.size() == n);

  // v = identity
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) v[i][i] = 1.0;

  // Cyclic Jacobi sweeps.
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-22) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a[p][q]) < 1e-300) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k][p];
          const double vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a[x][x] > a[y][y]; });

  eigenvalues.resize(n);
  eigenvectors.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t r = 0; r < n; ++r) {
    eigenvalues[r] = a[order[r]][order[r]];
    for (std::size_t k = 0; k < n; ++k) {
      eigenvectors[r][k] = v[k][order[r]];  // column → row
    }
  }
}

void Pca::fit(const std::vector<std::vector<double>>& X,
              double varianceFraction, int fixedComponents) {
  TP_REQUIRE(!X.empty(), "Pca::fit: empty matrix");
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();

  mean_.assign(d, 0.0);
  for (const auto& row : X) {
    TP_REQUIRE(row.size() == d, "Pca::fit: ragged rows");
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(n);

  // Covariance matrix.
  std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
  for (const auto& row : X) {
    for (std::size_t i = 0; i < d; ++i) {
      const double di = row[i] - mean_[i];
      for (std::size_t j = i; j < d; ++j) {
        cov[i][j] += di * (row[j] - mean_[j]);
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov[i][j] /= denom;
      cov[j][i] = cov[i][j];
    }
  }

  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  symmetricEigen(std::move(cov), eigenvalues, eigenvectors);

  std::size_t keep;
  if (fixedComponents > 0) {
    keep = std::min<std::size_t>(static_cast<std::size_t>(fixedComponents), d);
  } else {
    const double total =
        std::accumulate(eigenvalues.begin(), eigenvalues.end(), 0.0,
                        [](double acc, double v) { return acc + std::max(0.0, v); });
    keep = d;
    if (total > 0.0) {
      double cum = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        cum += std::max(0.0, eigenvalues[k]);
        if (cum / total >= varianceFraction) {
          keep = k + 1;
          break;
        }
      }
    }
  }

  components_.assign(eigenvectors.begin(),
                     eigenvectors.begin() + static_cast<long>(keep));
  eigenvalues_.assign(eigenvalues.begin(),
                      eigenvalues.begin() + static_cast<long>(keep));
}

std::vector<double> Pca::transform(const std::vector<double>& x) const {
  TP_ASSERT(fitted());
  TP_REQUIRE(x.size() == mean_.size(), "Pca::transform: dimension mismatch");
  std::vector<double> out(components_.size(), 0.0);
  for (std::size_t c = 0; c < components_.size(); ++c) {
    double acc = 0.0;
    for (std::size_t j = 0; j < mean_.size(); ++j) {
      acc += components_[c][j] * (x[j] - mean_[j]);
    }
    out[c] = acc;
  }
  return out;
}

std::vector<std::vector<double>> Pca::transformAll(
    const std::vector<std::vector<double>>& X) const {
  std::vector<std::vector<double>> out;
  out.reserve(X.size());
  for (const auto& row : X) out.push_back(transform(row));
  return out;
}

void Pca::save(std::ostream& os) const {
  os.precision(17);
  os << "pca " << mean_.size() << ' ' << components_.size() << "\n";
  for (const double m : mean_) os << m << ' ';
  os << "\n";
  for (std::size_t c = 0; c < components_.size(); ++c) {
    os << eigenvalues_[c];
    for (const double w : components_[c]) os << ' ' << w;
    os << "\n";
  }
}

void Pca::load(std::istream& is) {
  std::string tag;
  std::size_t d = 0, k = 0;
  is >> tag >> d >> k;
  TP_REQUIRE(is && tag == "pca", "bad pca header");
  mean_.assign(d, 0.0);
  for (double& m : mean_) is >> m;
  components_.assign(k, std::vector<double>(d, 0.0));
  eigenvalues_.assign(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    is >> eigenvalues_[c];
    for (double& w : components_[c]) is >> w;
  }
  TP_REQUIRE(static_cast<bool>(is), "truncated pca data");
}

}  // namespace tp::ml
