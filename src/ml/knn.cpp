#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/error.hpp"

namespace tp::ml {

void KnnClassifier::train(const Dataset& data) {
  data.validate();
  TP_REQUIRE(data.size() > 0, "KnnClassifier: empty training set");
  TP_REQUIRE(k_ >= 1, "KnnClassifier: k must be >= 1");
  numClasses_ = data.numClasses;
  normalizer_.fit(data.X);
  X_ = normalizer_.transformAll(data.X);
  y_ = data.y;
}

std::vector<double> KnnClassifier::scores(const std::vector<double>& x) const {
  TP_ASSERT_MSG(!X_.empty(), "predict called on untrained knn");
  const std::vector<double> z = normalizer_.transform(x);

  std::vector<std::pair<double, int>> distances;  // (squared distance, label)
  distances.reserve(X_.size());
  for (std::size_t i = 0; i < X_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < z.size(); ++j) {
      const double delta = X_[i][j] - z[j];
      d2 += delta * delta;
    }
    distances.emplace_back(d2, y_[i]);
  }
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(k_),
                                              distances.size());
  std::partial_sort(distances.begin(), distances.begin() + static_cast<long>(k),
                    distances.end());

  std::vector<double> votes(static_cast<std::size_t>(numClasses_), 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const double weight = 1.0 / (std::sqrt(distances[i].first) + 1e-6);
    votes[static_cast<std::size_t>(distances[i].second)] += weight;
  }
  const double total = std::accumulate(votes.begin(), votes.end(), 0.0);
  if (total > 0.0) {
    for (double& v : votes) v /= total;
  }
  return votes;
}

int KnnClassifier::predict(const std::vector<double>& x) const {
  const auto s = scores(x);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

void KnnClassifier::save(std::ostream& os) const {
  os.precision(17);
  os << "knn " << numClasses_ << ' ' << k_ << ' ' << X_.size() << ' '
     << (X_.empty() ? 0 : X_.front().size()) << "\n";
  normalizer_.save(os);
  for (std::size_t i = 0; i < X_.size(); ++i) {
    os << y_[i];
    for (const double v : X_[i]) os << ' ' << v;
    os << "\n";
  }
}

void KnnClassifier::load(std::istream& is) {
  std::string tag;
  std::size_t n = 0, d = 0;
  is >> tag >> numClasses_ >> k_ >> n >> d;
  TP_REQUIRE(is && tag == "knn", "bad knn header");
  normalizer_.load(is);
  X_.assign(n, std::vector<double>(d, 0.0));
  y_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    is >> y_[i];
    for (double& v : X_[i]) is >> v;
  }
  TP_REQUIRE(static_cast<bool>(is), "truncated knn data");
}

}  // namespace tp::ml
