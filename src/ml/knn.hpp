#pragma once

// k-nearest-neighbors classifier (inverse-distance-weighted voting in the
// normalized feature space). Simple, surprisingly competitive on this task,
// and a useful sanity baseline for the learned models.

#include "ml/classifier.hpp"
#include "ml/normalizer.hpp"

namespace tp::ml {

class KnnClassifier final : public Classifier {
public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  void train(const Dataset& data) override;
  int predict(const std::vector<double>& x) const override;
  std::vector<double> scores(const std::vector<double>& x) const override;
  std::string name() const override { return "knn"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

private:
  int k_;
  Normalizer normalizer_;
  std::vector<std::vector<double>> X_;
  std::vector<int> y_;
};

}  // namespace tp::ml
