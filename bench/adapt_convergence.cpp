// Online-refinement convergence: how much simulated execution time the
// adapt::Refiner claws back over a deliberately weak deployment model,
// wave by wave, until steady state.
//
// The deployment model is trained with a weak spec (default: mostfreq,
// i.e. one static label for all traffic — the paper's "default strategy"
// failure mode), so the refiner has headroom. Each wave replays closed-
// loop traffic, then the steady-state cost is probed per launch with the
// first non-explored (exploiting) response. The steady-state mean is
// monotonically non-increasing in a deterministic simulation: wins
// require strict measured improvement.
//
// Usage: adapt_convergence [--waves W] [--requests N] [--threads T]
//                          [--programs P] [--explore F] [--spec S]
//                          [--json PATH]
//
// With --json the headline numbers are written as a flat JSON object
// (see scripts/bench.sh, which appends to the repo's perf trajectory as
// BENCH_adapt.json).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "harness_util.hpp"
#include "runtime/evaluation.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

struct Options {
  std::size_t waves = 5;
  std::size_t requests = 1500;  ///< per wave
  std::size_t threads = 4;
  std::size_t programs = 6;
  double explore = 0.25;
  std::string spec = "mostfreq";  ///< weak on purpose: headroom to refine
  std::string jsonPath;
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--waves") {
      opt.waves = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--programs") {
      opt.programs = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--explore") {
      opt.explore = std::atof(value());
    } else if (arg == "--spec") {
      opt.spec = value();
    } else if (arg == "--json") {
      opt.jsonPath = value();
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\nusage: adapt_convergence "
                   "[--waves W] [--requests N] [--threads T] [--programs P] "
                   "[--explore F] [--spec S] [--json PATH]\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// Mean steady-state (exploiting) makespan over every distinct launch.
double steadyStateMean(serve::PartitionService& service,
                       const std::vector<runtime::Task>& tasks,
                       const std::vector<sim::MachineConfig>& machines) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& machine : machines) {
    for (const auto& task : tasks) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        serve::LaunchRequest request;
        request.machine = machine.name;
        request.task = task;
        const auto response = service.call(std::move(request));
        if (response.explored) continue;  // probe: not steady state
        sum += response.execution.makespan;
        ++count;
        break;
      }
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);
  const Options opt = parseArgs(argc, argv);

  const auto machines = sim::evaluationMachines();
  const runtime::PartitioningSpace space(machines[0].numDevices(), 10);

  std::vector<runtime::Task> tasks;
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  const auto& all = suite::allBenchmarks();
  for (std::size_t b = 0; b < opt.programs && b < all.size(); ++b) {
    const auto& bench = all[b];
    for (std::size_t s = 0; s < std::min<std::size_t>(2, bench.sizes.size());
         ++s) {
      auto inst = bench.make(bench.sizes[s]);
      for (const auto& machine : machines) {
        db.add(runtime::measureLaunch(inst.task, machine, space,
                                      "n=" + std::to_string(bench.sizes[s])));
      }
      tasks.push_back(std::move(inst.task));
    }
  }

  auto weakModel = [&](const sim::MachineConfig& machine) {
    return std::shared_ptr<const ml::Classifier>(
        runtime::trainDeploymentModel(db, machine.name, opt.spec));
  };

  // ---- pure-prediction baseline (deterministic: one call per launch) ------
  double baselineMean = 0.0;
  {
    serve::ServiceConfig config;
    config.recordFeedback = false;
    serve::PartitionService baseline(config);
    for (const auto& machine : machines) {
      baseline.addMachine(machine, weakModel(machine));
    }
    double sum = 0.0;
    for (const auto& machine : machines) {
      for (const auto& task : tasks) {
        serve::LaunchRequest request;
        request.machine = machine.name;
        request.task = task;
        sum += baseline.call(std::move(request)).execution.makespan;
      }
    }
    baselineMean = sum / static_cast<double>(tasks.size() * machines.size());
    baseline.shutdown();
  }

  // ---- refined service ----------------------------------------------------
  serve::ServiceConfig config;
  config.recordFeedback = false;
  config.refine = true;
  config.refiner.exploreFraction = opt.explore;
  config.refiner.seed = 99;
  serve::PartitionService service(config);
  for (const auto& machine : machines) {
    service.addMachine(machine, weakModel(machine));
  }

  std::printf("adapt_convergence: %zu launches x %zu machines, spec '%s', "
              "explore %.0f%%, %zu req/wave x %zu waves\n\n",
              tasks.size(), machines.size(), opt.spec.c_str(),
              100.0 * opt.explore, opt.requests, opt.waves);

  bench::TablePrinter table({"wave", "requests", "steady us", "vs baseline",
                             "explores", "wins", "keys"});
  double finalMean = baselineMean;
  for (std::size_t w = 0; w < opt.waves; ++w) {
    std::vector<std::thread> clients;
    const std::size_t each =
        std::max<std::size_t>(1, opt.requests / std::max<std::size_t>(
                                                    1, opt.threads));
    for (std::size_t c = 0; c < opt.threads; ++c) {
      clients.emplace_back([&, c, w] {
        common::Rng rng(0xADA7u + 131 * w + c);
        for (std::size_t r = 0; r < each; ++r) {
          serve::LaunchRequest request;
          request.machine = machines[rng.below(machines.size())].name;
          request.task = tasks[rng.below(tasks.size())];
          (void)service.submit(std::move(request)).get();
        }
      });
    }
    for (auto& c : clients) c.join();

    finalMean = steadyStateMean(service, tasks, machines);
    const auto stats = service.stats();
    table.addRow({std::to_string(w + 1), std::to_string(each * opt.threads),
                  bench::fmt(finalMean * 1e6, 1),
                  bench::fmt(100.0 * (baselineMean - finalMean) /
                                 baselineMean, 1) + "%",
                  std::to_string(stats.refiner.explorations),
                  std::to_string(stats.refiner.wins),
                  std::to_string(stats.refinedKeys)});
  }
  table.print();

  const auto stats = service.stats();
  const double improvement =
      baselineMean > 0.0 ? (baselineMean - finalMean) / baselineMean : 0.0;
  std::printf("\nbaseline %.1fus -> steady state %.1fus (%.1f%% faster), "
              "%llu wins from %llu probes\n",
              baselineMean * 1e6, finalMean * 1e6, 100.0 * improvement,
              static_cast<unsigned long long>(stats.refiner.wins),
              static_cast<unsigned long long>(stats.refiner.explorations));

  if (!opt.jsonPath.empty()) {
    bench::JsonObject json;
    json.set("bench", "adapt_convergence");
    json.set("spec", opt.spec);
    json.setInt("waves", opt.waves);
    json.setInt("requests_per_wave", opt.requests);
    json.setInt("threads", opt.threads);
    json.setInt("distinct_launches", tasks.size() * machines.size());
    json.set("explore_fraction", opt.explore);
    json.set("baseline_mean_makespan_us", baselineMean * 1e6);
    json.set("steady_mean_makespan_us", finalMean * 1e6);
    json.set("improvement_pct", 100.0 * improvement);
    json.setInt("explorations", stats.refiner.explorations);
    json.setInt("wins", stats.refiner.wins);
    json.setInt("refined_keys", stats.refinedKeys);
    json.setInt("requests_completed", stats.requestsCompleted);
    bench::writeJson(opt.jsonPath, json);
    std::printf("\nwrote %s\n", opt.jsonPath.c_str());
  }
  service.shutdown();
  return 0;
}
