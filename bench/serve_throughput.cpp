// Serving throughput: requests/sec and cache hit-rate of tp::serve under
// closed-loop multi-threaded load, cold (empty cache) vs. warm.
//
// Usage: serve_throughput [--requests N] [--threads T] [--programs P]
//                         [--json PATH] [--trace PATH] [--metrics PATH]
//
// With --json the headline numbers are also written as a flat JSON object
// (see scripts/bench.sh, which appends to the repo's perf trajectory as
// BENCH_serve.json). --trace captures a Chrome trace of both waves
// (1-in-64 sampled warm hits); --metrics dumps the obs registry on exit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "harness_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/evaluation.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

struct Options {
  std::size_t requests = 4000;  ///< warm-phase request count
  std::size_t threads = 8;
  std::size_t programs = 8;
  std::string jsonPath;
  std::string tracePath;
  std::string metricsPath;
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--programs") {
      opt.programs = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--json") {
      opt.jsonPath = value();
    } else if (arg == "--trace") {
      opt.tracePath = value();
    } else if (arg == "--metrics") {
      opt.metricsPath = value();
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\nusage: serve_throughput "
                   "[--requests N] [--threads T] [--programs P] "
                   "[--json PATH] [--trace PATH] [--metrics PATH]\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);
  const Options opt = parseArgs(argc, argv);

  const auto machines = sim::evaluationMachines();
  const runtime::PartitioningSpace space(machines[0].numDevices(), 10);

  // Workload + per-machine deployment models (2 sizes per program);
  // shared with serve_scaling so both benches measure one traffic mix.
  auto [tasks, db] = bench::buildServeWorkload(opt.programs, machines, space);

  if (!opt.tracePath.empty()) obs::traceRecorder().enable();

  serve::ServiceConfig config;
  config.cacheCapacity = 1024;
  config.lanesPerMachine = 2;
  config.recordFeedback = false;  // isolate the serving hot path
  if (!opt.metricsPath.empty()) config.metrics = &obs::defaultRegistry();
  serve::PartitionService service(config);
  for (const auto& machine : machines) {
    service.addMachine(
        machine, std::shared_ptr<const ml::Classifier>(
                     runtime::trainDeploymentModel(db, machine.name,
                                                   "forest:32")));
  }

  // Cold: first pass over the distinct keys fills the cache.
  const std::size_t coldRequests =
      std::max<std::size_t>(tasks.size() * machines.size(), 64);
  const double coldSeconds =
      bench::serveWave(service, tasks, machines, opt.threads,
                       coldRequests, 0xC01D);
  const auto coldStats = service.stats();

  // Warm: replayed traffic should mostly hit the decision cache.
  const double warmSeconds =
      bench::serveWave(service, tasks, machines, opt.threads,
                       opt.requests, 0x3A83);
  const auto warmStats = service.stats();

  const auto warmLookups = warmStats.cache.lookups - coldStats.cache.lookups;
  const auto warmHits = warmStats.cache.hits - coldStats.cache.hits;
  const double warmHitRate =
      warmLookups == 0
          ? 0.0
          : static_cast<double>(warmHits) / static_cast<double>(warmLookups);
  const double coldRps =
      static_cast<double>(coldStats.requestsCompleted) / coldSeconds;
  const double warmRps =
      static_cast<double>(warmStats.requestsCompleted -
                          coldStats.requestsCompleted) /
      warmSeconds;

  bench::TablePrinter table(
      {"phase", "requests", "req/s", "hit-rate", "p50 us", "p95 us"});
  table.addRow({"cold", std::to_string(coldStats.requestsCompleted),
                bench::fmt(coldRps, 0),
                bench::fmt(100.0 * coldStats.cacheHitRate, 1) + "%",
                bench::fmt(coldStats.latency.p50Seconds * 1e6, 0),
                bench::fmt(coldStats.latency.p95Seconds * 1e6, 0)});
  table.addRow({"warm",
                std::to_string(warmStats.requestsCompleted -
                               coldStats.requestsCompleted),
                bench::fmt(warmRps, 0), bench::fmt(100.0 * warmHitRate, 1) + "%",
                bench::fmt(warmStats.latency.p50Seconds * 1e6, 0),
                bench::fmt(warmStats.latency.p95Seconds * 1e6, 0)});
  std::printf("serve_throughput: %zu clients, %zu launches x %zu machines, "
              "cache %zu\n\n",
              opt.threads, tasks.size(), machines.size(),
              config.cacheCapacity);
  table.print();

  if (!opt.jsonPath.empty()) {
    bench::JsonObject json;
    json.set("bench", "serve_throughput");
    json.setInt("threads", opt.threads);
    json.setInt("programs", opt.programs);
    json.setInt("distinct_launches", tasks.size() * machines.size());
    json.setInt("requests_cold", coldStats.requestsCompleted);
    json.setInt("requests_warm",
                warmStats.requestsCompleted - coldStats.requestsCompleted);
    json.set("requests_per_sec_cold", coldRps);
    json.set("requests_per_sec_warm", warmRps);
    json.set("hit_rate_warm", warmHitRate);
    json.set("p50_latency_us", warmStats.latency.p50Seconds * 1e6);
    json.set("p95_latency_us", warmStats.latency.p95Seconds * 1e6);
    json.setInt("cache_capacity", config.cacheCapacity);
    json.setInt("cache_evictions", warmStats.cache.evictions);
    bench::writeJson(opt.jsonPath, json);
    std::printf("\nwrote %s\n", opt.jsonPath.c_str());
  }

  if (!opt.tracePath.empty()) {
    obs::traceRecorder().disable();
    obs::traceRecorder().writeChromeTraceFile(opt.tracePath);
    std::printf("trace written to %s\n", opt.tracePath.c_str());
  }
  if (!opt.metricsPath.empty()) {
    // Dump before the service destructor unregisters its readouts.
    std::ofstream out(opt.metricsPath);
    out << obs::defaultRegistry().exportJson() << "\n";
    std::printf("metrics written to %s\n", opt.metricsPath.c_str());
  }
  return 0;
}
