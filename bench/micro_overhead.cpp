// Runtime-overhead microbenchmarks (google-benchmark): what the deployment
// phase costs per kernel launch — feature evaluation, model prediction,
// partition planning — and what the offline phases cost (oracle sweep,
// model training, kernel compilation). The paper's runtime decision must be
// negligible against kernel execution times (0.1ms–1s).

#include <benchmark/benchmark.h>

#include <memory>

#include "common/log.hpp"
#include "features/runtime_features.hpp"
#include "ml/classifier.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/strategy.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

namespace {

using namespace tp;

runtime::FeatureDatabase smallDb(const runtime::PartitioningSpace& space) {
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  for (const auto& name : {"vecadd", "matmul", "nbody", "spmv"}) {
    const auto& b = suite::benchmarkByName(name);
    for (std::size_t s = 0; s < 3; ++s) {
      auto inst = b.make(b.sizes[s]);
      db.add(runtime::measureLaunch(inst.task, sim::makeMc2(), space,
                                    "n=" + std::to_string(b.sizes[s])));
    }
  }
  return db;
}

struct Fixture {
  runtime::PartitioningSpace space{3, 10};
  suite::BenchmarkInstance instance;
  std::unique_ptr<ml::Classifier> model;

  Fixture() {
    common::setLogLevel(common::LogLevel::Warn);
    const auto& bench = suite::benchmarkByName("kmeans");
    instance = bench.make(bench.sizes[2]);
    model = runtime::trainDeploymentModel(smallDb(space), "mc2", "forest:64");
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_FeatureVector(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::combinedFeatureVector(
        f.instance.task.features, f.instance.task.launchInfo()));
  }
}
BENCHMARK(BM_FeatureVector);

void BM_ModelPrediction(benchmark::State& state) {
  auto& f = fixture();
  const auto x = features::combinedFeatureVector(f.instance.task.features,
                                                 f.instance.task.launchInfo());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->predict(x));
  }
}
BENCHMARK(BM_ModelPrediction);

void BM_PartitionPlanning(benchmark::State& state) {
  auto& f = fixture();
  const auto& p = f.space.at(33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::splitGroups(f.instance.task.numGroups(), p));
  }
}
BENCHMARK(BM_PartitionPlanning);

void BM_SimulatedExecution(benchmark::State& state) {
  auto& f = fixture();
  vcl::Context ctx(sim::makeMc2(), vcl::ExecMode::TimeOnly, nullptr);
  runtime::Scheduler scheduler(ctx);
  const auto& p = f.space.at(33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.execute(f.instance.task, p).makespan);
  }
}
BENCHMARK(BM_SimulatedExecution);

void BM_OracleSearch66(benchmark::State& state) {
  auto& f = fixture();
  const auto machine = sim::makeMc2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::oracleSearch(f.instance.task, machine, f.space));
  }
}
BENCHMARK(BM_OracleSearch66);

void BM_KernelCompilation(benchmark::State& state) {
  const std::string source = suite::benchmarkByName("blackscholes").source();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::CompiledKernel::compile(source));
  }
}
BENCHMARK(BM_KernelCompilation);

void BM_ForestTraining(benchmark::State& state) {
  auto& f = fixture();
  const auto db = smallDb(f.space);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::trainDeploymentModel(db, "mc2", "forest:64"));
  }
}
BENCHMARK(BM_ForestTraining);

}  // namespace

BENCHMARK_MAIN();
