// Ablation B — partitioning-space step size. The paper fixes a 10% step
// (§2.1); this harness quantifies that choice: coarser spaces are easier to
// learn but lose oracle headroom, finer spaces add little performance while
// multiplying the search/training cost.

#include <cstdio>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "harness_util.hpp"

int main() {
  using namespace tp;
  common::setLogLevel(common::LogLevel::Warn);

  std::printf("=== Step-size ablation (discretization of the partitioning "
              "space) ===\n\n");

  tp::bench::TablePrinter table({"step", "divisions", "|space|",
                                 "oracle vs CPU-only (mc1)",
                                 "oracle vs CPU-only (mc2)",
                                 "predicted vs CPU-only (mc2)"});

  for (const int divisions : {1, 2, 5, 10, 20}) {
    const runtime::PartitioningSpace space(3, divisions);
    const auto db = tp::bench::fullSweep(space);

    double oracleGain[2] = {0.0, 0.0};
    int mi = 0;
    for (const char* machine : {"mc1", "mc2"}) {
      const std::size_t cpuIdx = space.cpuOnlyIndex();
      std::vector<double> gains;
      for (const auto* r : db.forMachine(machine)) {
        gains.push_back(r->times[cpuIdx] / r->bestTime());
      }
      oracleGain[mi++] = common::geomean(gains);
    }

    const auto result = runtime::evaluateFigure1(
        db, "mc2", space, [] { return ml::makeClassifier("forest:64"); });

    char stepLabel[16];
    std::snprintf(stepLabel, sizeof(stepLabel), "%d%%", 100 / divisions);
    table.addRow({stepLabel, std::to_string(divisions),
                  std::to_string(space.size()),
                  tp::bench::fmt(oracleGain[0]),
                  tp::bench::fmt(oracleGain[1]),
                  tp::bench::fmt(result.meanSpeedupOverCpu)});
  }
  table.print();
  std::printf("\nexpectation: most of the oracle headroom is reached by the "
              "10%% step; finer steps grow the space (and the training "
              "sweep) with diminishing returns.\n");
  return 0;
}
