// Ablation D — hardware sensitivity ("different hardware configurations",
// §1). Two sweeps on synthetic mc2 variants:
//
//   1. PCIe bandwidth: transfers are what keep memory-bound kernels on the
//      CPU; this sweep locates the link speed at which the GPU default
//      overtakes the CPU default (and shows the oracle adapting earlier).
//   2. GPU count: 1 vs 2 GPUs — how much of the multi-device headroom the
//      second GPU contributes across the suite.
//
// Both reuse the full sweep machinery, just with modified MachineConfigs —
// demonstrating that the pipeline is machine-agnostic.

#include <cstdio>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "harness_util.hpp"
#include "suite/benchmark.hpp"

namespace {

using namespace tp;

/// Full sweep of the suite on one machine only.
runtime::FeatureDatabase sweepOn(const sim::MachineConfig& machine,
                                 const runtime::PartitioningSpace& space) {
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  for (const auto& bench : suite::allBenchmarks()) {
    for (const std::size_t n : bench.sizes) {
      auto inst = bench.make(n);
      db.add(runtime::measureLaunch(inst.task, machine, space,
                                    "n=" + std::to_string(n)));
    }
  }
  return db;
}

}  // namespace

int main() {
  common::setLogLevel(common::LogLevel::Warn);

  std::printf("=== Hardware-sensitivity ablation (mc2 variants) ===\n\n");

  // ---- sweep 1: PCIe bandwidth ---------------------------------------------
  {
    std::printf("-- PCIe bandwidth sweep (both GPUs) --\n");
    tp::bench::TablePrinter table({"PCIe GB/s", "CPU wins", "GPU wins",
                                   "oracle vs CPU-only"});
    const runtime::PartitioningSpace space(3, 10);
    for (const double gbps : {1.0, 2.0, 4.0, 5.6, 8.0, 16.0}) {
      auto machine = sim::makeMc2();
      machine.name = "mc2-pcie";
      for (const std::size_t g : machine.gpuIndices()) {
        machine.devices[g].transferBandwidth = gbps * 1e9;
      }
      const auto db = sweepOn(machine, space);
      const std::size_t cpuIdx = space.cpuOnlyIndex();
      const std::size_t gpuIdx = space.singleDeviceIndex(1);
      int cpuWins = 0, gpuWins = 0;
      std::vector<double> gains;
      for (const auto* r : db.forMachine(machine.name)) {
        (r->times[cpuIdx] < r->times[gpuIdx] ? cpuWins : gpuWins)++;
        gains.push_back(r->times[cpuIdx] / r->bestTime());
      }
      table.addRow({tp::bench::fmt(gbps, 1), std::to_string(cpuWins),
                    std::to_string(gpuWins),
                    tp::bench::fmt(common::geomean(gains))});
    }
    table.print();
    std::printf("\n");
  }

  // ---- sweep 2: GPU count ----------------------------------------------------
  {
    std::printf("-- GPU count sweep --\n");
    tp::bench::TablePrinter table(
        {"devices", "|space|", "oracle vs CPU-only", "oracle vs 1-GPU-best"});
    // Baseline: CPU + 1 GPU.
    auto oneGpu = sim::makeMc2();
    oneGpu.name = "mc2-1gpu";
    oneGpu.devices.pop_back();
    const runtime::PartitioningSpace space2(2, 10);
    const auto db1 = sweepOn(oneGpu, space2);

    auto twoGpu = sim::makeMc2();
    twoGpu.name = "mc2-2gpu";
    const runtime::PartitioningSpace space3(3, 10);
    const auto db2 = sweepOn(twoGpu, space3);

    std::vector<double> gain1, gain2, second;
    const auto r1 = db1.forMachine("mc2-1gpu");
    const auto r2 = db2.forMachine("mc2-2gpu");
    for (std::size_t i = 0; i < r1.size(); ++i) {
      gain1.push_back(r1[i]->times[space2.cpuOnlyIndex()] / r1[i]->bestTime());
      gain2.push_back(r2[i]->times[space3.cpuOnlyIndex()] / r2[i]->bestTime());
      second.push_back(r1[i]->bestTime() / r2[i]->bestTime());
    }
    table.addRow({"CPU + 1 GPU", std::to_string(space2.size()),
                  tp::bench::fmt(common::geomean(gain1)), "1.00"});
    table.addRow({"CPU + 2 GPU", std::to_string(space3.size()),
                  tp::bench::fmt(common::geomean(gain2)),
                  tp::bench::fmt(common::geomean(second))});
    table.print();
  }

  std::printf("\nexpectation: faster links shift the CPU/GPU crossover and "
              "grow the oracle's headroom; the second GPU helps mainly "
              "where the first one already won.\n");
  return 0;
}
