// Model comparison (§2.1's "machine learning" component, made explicit):
// leave-one-program-out accuracy, oracle fraction and speedups over the
// defaults for every model class — decision tree, random forest, kNN, MLP,
// the two-stage hierarchical model, and the most-frequent-label floor.

#include <cstdio>
#include <memory>

#include "common/log.hpp"
#include "harness_util.hpp"
#include "ml/two_stage.hpp"

int main() {
  using namespace tp;
  common::setLogLevel(common::LogLevel::Warn);

  std::printf("=== Model comparison (leave-one-program-out CV) ===\n\n");

  const runtime::PartitioningSpace space(3, 10);
  const auto db = tp::bench::fullSweep(space);
  const auto familyLabels = space.familyLabels();

  struct ModelSpec {
    std::string label;
    ml::ClassifierFactoryFn factory;
  };
  const std::vector<ModelSpec> models = {
      {"mostfreq", [] { return ml::makeClassifier("mostfreq"); }},
      {"tree", [] { return ml::makeClassifier("tree"); }},
      {"knn:5", [] { return ml::makeClassifier("knn:5"); }},
      {"forest:64", [] { return ml::makeClassifier("forest:64"); }},
      {"mlp:32,16", [] { return ml::makeClassifier("mlp:32,16"); }},
      {"two-stage(forest)",
       [&familyLabels] {
         return std::make_unique<ml::TwoStageClassifier>(
             familyLabels, [] { return ml::makeClassifier("forest:32", 7); },
             [] { return ml::makeClassifier("forest:32", 13); });
       }},
  };

  for (const char* machine : {"mc1", "mc2"}) {
    std::printf("--- %s ---\n", machine);
    tp::bench::TablePrinter table({"model", "exact acc", "oracle frac",
                                   "vs CPU-only", "vs GPU-only"});
    for (const auto& model : models) {
      const auto result =
          runtime::evaluateFigure1(db, machine, space, model.factory);
      table.addRow({model.label, tp::bench::fmt(result.exactLabelAccuracy),
                    tp::bench::fmt(result.oracleFraction),
                    tp::bench::fmt(result.meanSpeedupOverCpu),
                    tp::bench::fmt(result.meanSpeedupOverGpu)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("expectation: learned models clearly beat the most-frequent "
              "floor; exact-label accuracy is pessimistic (near-misses in "
              "the 66-way space still yield near-oracle runtimes).\n");
  return 0;
}
