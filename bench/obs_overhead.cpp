// Observability overhead: what tp::obs costs the serving hot path, and
// what individual probes cost in nanoseconds.
//
//   - Macro phases replay the serve_throughput warm workload through
//     three configurations: obs fully off (tracing runtime-disabled, no
//     metrics registry), tracing enabled but idle (no *_SAMPLED hits kept
//     beyond 1-in-N, registry attached), and tracing enabled with
//     sample-every-request. The ISSUE gate compares the enabled-sampled
//     warm throughput against a TP_TRACING=OFF build of this same binary
//     (bench.sh runs both and passes the compiled-out number back in via
//     --compiled-out-rps).
//   - Micro phases time single probes in a tight loop: span record when
//     disabled / sampled-out / kept, counter add, histogram record.
//
// Usage: obs_overhead [--requests N] [--threads T] [--programs P]
//                     [--reps R] [--json PATH] [--compiled-out-rps RPS]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "harness_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/evaluation.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

struct Options {
  // Warm-phase requests per configuration. Larger than serve_throughput's
  // default: the 5% CI gate needs the measurement window well above
  // scheduler jitter (4k requests is a ~10ms window at warm speeds).
  std::size_t requests = 40000;
  // Runs per configuration; the best one is reported. Thread placement
  // and frequency-ramp luck swing a single closed-loop wave by far more
  // than the overhead being measured — best-of-N compares the
  // configurations at their respective best case, which is the stable
  // statistic for an overhead gate.
  std::size_t reps = 3;
  std::size_t threads = 8;
  std::size_t programs = 8;
  std::string jsonPath;
  double compiledOutRps = 0.0;  ///< warm rps of a TP_TRACING=OFF build
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--programs") {
      opt.programs = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--reps") {
      opt.reps = std::max<std::size_t>(1, std::atoll(value()));
    } else if (arg == "--json") {
      opt.jsonPath = value();
    } else if (arg == "--compiled-out-rps") {
      opt.compiledOutRps = std::atof(value());
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\nusage: obs_overhead "
                   "[--requests N] [--threads T] [--programs P] "
                   "[--reps R] [--json PATH] [--compiled-out-rps RPS]\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// Warm requests/sec of one service configuration: fresh service, cold
/// pass to fill the cache, then the best of opt.reps timed warm waves.
double warmRps(const Options& opt, const std::vector<runtime::Task>& tasks,
               const std::vector<sim::MachineConfig>& machines,
               const runtime::FeatureDatabase& db, obs::Registry* metrics) {
  serve::ServiceConfig config;
  config.cacheCapacity = 1024;
  config.lanesPerMachine = 2;
  config.recordFeedback = false;
  config.metrics = metrics;
  config.metricsPrefix = "bench.serve.";
  serve::PartitionService service(config);
  for (const auto& machine : machines) {
    service.addMachine(
        machine, std::shared_ptr<const ml::Classifier>(
                     runtime::trainDeploymentModel(db, machine.name,
                                                   "forest:32")));
  }
  const std::size_t coldRequests =
      std::max<std::size_t>(tasks.size() * machines.size(), 64);
  (void)bench::serveWave(service, tasks, machines, opt.threads, coldRequests,
                         0xC01D);
  double best = 0.0;
  for (std::size_t rep = 0; rep < opt.reps; ++rep) {
    const auto before = service.stats();
    const double seconds = bench::serveWave(
        service, tasks, machines, opt.threads, opt.requests, 0x3A83 + rep);
    const auto after = service.stats();
    const double rps = static_cast<double>(after.requestsCompleted -
                                           before.requestsCompleted) /
                       seconds;
    best = std::max(best, rps);
  }
  return best;
}

/// Nanoseconds per iteration of `body` over `iters` runs (bench/ may use
/// std::chrono directly — see lint rule R8).
template <typename Body>
double nsPerOp(std::size_t iters, Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) body(i);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);
  const Options opt = parseArgs(argc, argv);

  const auto machines = sim::evaluationMachines();
  const runtime::PartitioningSpace space(machines[0].numDevices(), 10);
  auto [tasks, db] = bench::buildServeWorkload(opt.programs, machines, space);

  // ---- macro: warm serving throughput per obs configuration --------------
  // Discarded warm-up pass first: the very first wave pays for CPU
  // frequency ramp, allocator arenas and page faults, which would
  // otherwise be billed entirely to whichever configuration runs first.
  obs::traceRecorder().disable();
  (void)warmRps(opt, tasks, machines, db, nullptr);

  const double rpsOff = warmRps(opt, tasks, machines, db, nullptr);

  obs::TraceRecorder::Config idle;  // default 1-in-64 sampling
  obs::traceRecorder().enable(idle);
  obs::Registry registry;
  const double rpsIdle = warmRps(opt, tasks, machines, db, &registry);

  obs::TraceRecorder::Config everyHit;
  everyHit.sampleEveryN = 1;  // keep every warm-hit span
  obs::traceRecorder().enable(everyHit);
  const double rpsSampled = warmRps(opt, tasks, machines, db, &registry);
  obs::traceRecorder().disable();

  // ---- micro: single-probe costs -----------------------------------------
  constexpr std::size_t kIters = 1 << 20;
  const double nsSpanDisabled = nsPerOp(kIters, [](std::size_t i) {
    TP_TRACE_SPAN_ARG("bench.disabled_span", i);
  });

  obs::TraceRecorder::Config micro;
  micro.sampleEveryN = 64;
  obs::traceRecorder().enable(micro);
  const double nsSpanSampledOut = nsPerOp(kIters, [](std::size_t i) {
    TP_TRACE_SPAN_SAMPLED("bench.sampled_span", i);  // kept 1-in-64
  });
  const double nsSpanKept = nsPerOp(kIters, [](std::size_t i) {
    TP_TRACE_SPAN_ARG("bench.kept_span", i);  // recorded every time
  });
  obs::traceRecorder().disable();

  common::StripedCounter& counter = registry.counter("bench.micro_counter");
  const double nsCounterAdd =
      nsPerOp(kIters, [&](std::size_t) { counter.add(1); });
  obs::Histogram& histogram = registry.histogram("bench.micro_histogram");
  const double nsHistogramRecord =
      nsPerOp(kIters, [&](std::size_t i) { histogram.record(i); });

  const bool tracingCompiled = TP_OBS_TRACING != 0;
  std::printf("obs_overhead: %zu clients, %zu warm requests per config, "
              "tracing %s\n\n",
              opt.threads, opt.requests,
              tracingCompiled ? "compiled in" : "compiled out");
  bench::TablePrinter table({"configuration", "req/s", "vs off"});
  auto pct = [&](double rps) {
    return bench::fmt(100.0 * (rps - rpsOff) / rpsOff, 1) + "%";
  };
  table.addRow({"obs off (runtime)", bench::fmt(rpsOff, 0), "--"});
  table.addRow({"tracing idle + metrics", bench::fmt(rpsIdle, 0),
                pct(rpsIdle)});
  table.addRow({"tracing every-hit + metrics", bench::fmt(rpsSampled, 0),
                pct(rpsSampled)});
  table.print();
  std::printf("\nmicro-costs (ns/op): span disabled %.1f, sampled-out %.1f, "
              "kept %.1f; counter add %.1f, histogram record %.1f\n",
              nsSpanDisabled, nsSpanSampledOut, nsSpanKept, nsCounterAdd,
              nsHistogramRecord);

  if (!opt.jsonPath.empty()) {
    bench::JsonObject json;
    json.set("bench", "obs_overhead");
    json.setInt("tracing_compiled_in", tracingCompiled ? 1 : 0);
    json.setInt("threads", opt.threads);
    json.setInt("requests_warm", opt.requests);
    json.setInt("reps", opt.reps);
    // Gate metric: warm throughput with obs fully enabled (sampled
    // tracing + metrics registry). bench.sh compares it against the
    // compiled-out build's number with a 5% bar.
    json.set("requests_per_sec_warm", rpsIdle);
    json.set("requests_per_sec_disabled", rpsOff);
    json.set("requests_per_sec_every_hit", rpsSampled);
    if (opt.compiledOutRps > 0.0) {
      json.set("requests_per_sec_compiled_out", opt.compiledOutRps);
      json.set("enabled_overhead_pct",
               100.0 * (opt.compiledOutRps - rpsIdle) / opt.compiledOutRps);
    }
    json.set("ns_span_disabled", nsSpanDisabled);
    json.set("ns_span_sampled_out", nsSpanSampledOut);
    json.set("ns_span_kept", nsSpanKept);
    json.set("ns_counter_add", nsCounterAdd);
    json.set("ns_histogram_record", nsHistogramRecord);
    bench::writeJson(opt.jsonPath, json);
    std::printf("\nwrote %s\n", opt.jsonPath.c_str());
  }
  return 0;
}
