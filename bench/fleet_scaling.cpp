// Fleet scaling: what gossiped refiner wins buy a replicated serving
// deployment.
//
// Three scenarios over the same workload (suite programs, both
// evaluation machines, a deliberately weak CPU-only deployment model):
//
//   single    — one replica, per-replica traffic share, no gossip
//   isolated  — N replicas, no gossip: every replica rediscovers wins
//   gossip    — N replicas, anti-entropy rounds between waves
//
// Reported per scenario: probes (refiner explorations) per replica,
// steady-state refined makespan, adopted wins, and gossip transport
// volume. The headline claims: with gossip the fleet's steady-state
// refined makespan is no worse than the single-replica baseline at
// equal per-replica traffic, while probes per replica drop well below
// the isolated fleet (wins are shared, not rediscovered).
//
// Usage: fleet_scaling [--replicas N] [--waves W] [--requests R]
//                      [--programs P] [--explore F] [--json PATH]
//                      [--trace PATH] [--metrics PATH]
//
// With --json the headline numbers are written as a flat JSON object
// (see scripts/bench.sh, which appends to the repo's perf trajectory as
// BENCH_fleet.json). --trace captures a Chrome trace of the gossip
// scenario; --metrics dumps the obs registry (per-replica namespaced
// serve counters) after it.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "harness_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

struct Options {
  std::size_t replicas = 3;
  std::size_t waves = 12;
  /// Per wave, fleet-wide. One gossip round runs between waves, so this
  /// sets the anti-entropy cadence relative to per-key traffic (~5
  /// sightings per key per replica per round at the defaults).
  std::size_t requests = 360;
  std::size_t programs = 6;
  std::size_t sizesPerProgram = 2;
  double explore = 0.4;
  std::string jsonPath;
  std::string tracePath;    ///< Chrome trace of the gossip scenario
  std::string metricsPath;  ///< obs registry JSON dump after it
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--replicas") {
      opt.replicas = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--waves") {
      opt.waves = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--requests") {
      opt.requests = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--programs") {
      opt.programs = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--explore") {
      opt.explore = std::strtod(value(), nullptr);
    } else if (arg == "--json") {
      opt.jsonPath = value();
    } else if (arg == "--trace") {
      opt.tracePath = value();
    } else if (arg == "--metrics") {
      opt.metricsPath = value();
    } else {
      std::fprintf(stderr,
                   "usage: fleet_scaling [--replicas N] [--waves W] "
                   "[--requests R] [--programs P] [--explore F] "
                   "[--json PATH] [--trace PATH] [--metrics PATH]\n");
      std::exit(2);
    }
  }
  return opt;
}

struct Workload {
  std::vector<sim::MachineConfig> machines = sim::evaluationMachines();
  std::vector<runtime::Task> tasks;
  std::shared_ptr<const ml::Classifier> weakModel;

  explicit Workload(const Options& opt) {
    const auto& all = suite::allBenchmarks();
    for (std::size_t b = 0; b < opt.programs && b < all.size(); ++b) {
      for (std::size_t s = 0;
           s < std::min(opt.sizesPerProgram, all[b].sizes.size()); ++s) {
        tasks.push_back(all[b].make(all[b].sizes[s]).task);
      }
    }
    const runtime::PartitioningSpace space(machines[0].numDevices(), 10);
    ml::Dataset seed;
    seed.numClasses = static_cast<int>(space.size());
    seed.featureNames = {"f0"};
    seed.add({0.0}, static_cast<int>(space.cpuOnlyIndex()), "seed");
    auto model = ml::makeClassifier("mostfreq");
    model->train(seed);
    weakModel = std::shared_ptr<const ml::Classifier>(std::move(model));
  }

  serve::LaunchRequest request(std::size_t index) const {
    serve::LaunchRequest r;
    r.machine = machines[index % machines.size()].name;
    r.task = tasks[(index / machines.size()) % tasks.size()];
    return r;
  }

  std::size_t distinctLaunches() const {
    return tasks.size() * machines.size();
  }
};

struct ScenarioResult {
  std::uint64_t probesMax = 0;      ///< per replica
  std::uint64_t probesTotal = 0;    ///< fleet-wide
  std::uint64_t winsLocal = 0;      ///< locally measured adoptions
  std::uint64_t winsAdopted = 0;    ///< adopted via gossip merges
  std::uint64_t gossipBytes = 0;
  std::uint64_t gossipMessages = 0;
  double steadyMeanSeconds = 0.0;
  double requestsServed = 0.0;
};

ScenarioResult runScenario(const Options& opt, const Workload& wl,
                           std::size_t replicas, bool gossip,
                           std::size_t requestsPerWave,
                           const std::string& metricsPath = "") {
  fleet::FleetConfig fc;
  fc.replicas = replicas;
  fc.gossipEnabled = gossip;
  // The registry dump has to happen while the fleet is alive: each
  // replica's service unregisters its readouts on destruction.
  if (!metricsPath.empty()) fc.service.metrics = &obs::defaultRegistry();
  fc.service.refine = true;
  fc.service.lanesPerMachine = 2;
  fc.service.refiner.exploreFraction = opt.explore;
  fc.service.refiner.probeSamples = 1;
  fc.service.refiner.neighborRadius = 2;
  fc.service.refiner.seed = 0xF1EE7;
  fleet::Fleet fleet(fc);
  for (const auto& machine : wl.machines) {
    fleet.addMachine(machine, wl.weakModel);
  }

  common::Rng rng(0xBE7C4);
  for (std::size_t wave = 0; wave < opt.waves; ++wave) {
    std::vector<std::future<serve::LaunchResponse>> inflight;
    inflight.reserve(requestsPerWave);
    for (std::size_t i = 0; i < requestsPerWave; ++i) {
      inflight.push_back(
          fleet.submit(wl.request(rng.below(wl.distinctLaunches()))));
    }
    for (auto& f : inflight) (void)f.get();
    if (gossip) fleet.gossipRound();
  }
  fleet.drainAll();

  ScenarioResult result;
  double steadySum = 0.0;
  for (std::size_t i = 0; i < wl.distinctLaunches(); ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto response = fleet.replica(0).call(wl.request(i));
      if (response.explored) continue;
      steadySum += response.execution.makespan;
      break;
    }
  }
  result.steadyMeanSeconds =
      steadySum / static_cast<double>(wl.distinctLaunches());
  const auto stats = fleet.stats();
  for (const auto& s : stats.replicas) {
    result.probesMax = std::max(result.probesMax, s.refiner.explorations);
    result.probesTotal += s.refiner.explorations;
    result.winsLocal += s.refiner.wins;
    result.winsAdopted += s.fleet.winsAdopted;
    result.requestsServed += static_cast<double>(s.requestsCompleted);
  }
  result.gossipBytes = stats.transport.bytesMoved;
  result.gossipMessages = stats.transport.delivered;
  if (!metricsPath.empty()) {
    std::ofstream out(metricsPath);
    out << obs::defaultRegistry().exportJson() << "\n";
    std::printf("metrics written to %s\n", metricsPath.c_str());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);
  const Options opt = parseArgs(argc, argv);
  const Workload wl(opt);
  std::printf("fleet_scaling: %zu launches x %zu machines, %zu replicas, "
              "%zu waves x %zu requests\n",
              wl.tasks.size(), wl.machines.size(), opt.replicas, opt.waves,
              opt.requests);

  const std::size_t perReplicaShare =
      std::max<std::size_t>(1, opt.requests / opt.replicas);
  const auto single =
      runScenario(opt, wl, 1, /*gossip=*/false, perReplicaShare);
  const auto isolated =
      runScenario(opt, wl, opt.replicas, /*gossip=*/false, opt.requests);
  // Trace/metrics cover only the gossip scenario — the interesting one
  // (serve + adapt + fleet layers all active).
  if (!opt.tracePath.empty()) obs::traceRecorder().enable();
  const auto gossip = runScenario(opt, wl, opt.replicas, /*gossip=*/true,
                                  opt.requests, opt.metricsPath);
  if (!opt.tracePath.empty()) {
    obs::traceRecorder().disable();
    obs::traceRecorder().writeChromeTraceFile(opt.tracePath);
    std::printf("trace written to %s\n", opt.tracePath.c_str());
  }

  bench::TablePrinter table(
      {"scenario", "probes/replica", "probes total", "wins", "adopted",
       "steady us", "gossip KiB"});
  const auto row = [&](const char* name, const ScenarioResult& r) {
    table.addRow({name, bench::fmt(static_cast<double>(r.probesMax), 0),
                  bench::fmt(static_cast<double>(r.probesTotal), 0),
                  bench::fmt(static_cast<double>(r.winsLocal), 0),
                  bench::fmt(static_cast<double>(r.winsAdopted), 0),
                  bench::fmt(1e6 * r.steadyMeanSeconds, 2),
                  bench::fmt(static_cast<double>(r.gossipBytes) / 1024.0, 1)});
  };
  row("single", single);
  row("isolated", isolated);
  row("gossip", gossip);
  table.print();

  const double probeSavings =
      isolated.probesMax > 0
          ? 1.0 - static_cast<double>(gossip.probesMax) /
                      static_cast<double>(isolated.probesMax)
          : 0.0;
  std::printf("\ngossip vs isolated: %.0f%% fewer probes per replica; "
              "steady-state %.2fus (single-replica baseline %.2fus)\n",
              100.0 * probeSavings, 1e6 * gossip.steadyMeanSeconds,
              1e6 * single.steadyMeanSeconds);

  if (!opt.jsonPath.empty()) {
    bench::JsonObject json;
    json.set("bench", "fleet_scaling");
    json.setInt("replicas", opt.replicas);
    json.setInt("waves", opt.waves);
    json.setInt("requests_per_wave", opt.requests);
    json.setInt("distinct_launches", wl.distinctLaunches());
    json.setInt("probes_per_replica_single", single.probesMax);
    json.setInt("probes_per_replica_isolated", isolated.probesMax);
    json.setInt("probes_per_replica_gossip", gossip.probesMax);
    json.set("probe_savings_vs_isolated", probeSavings);
    json.setInt("wins_local_gossip", gossip.winsLocal);
    json.setInt("wins_adopted_gossip", gossip.winsAdopted);
    json.set("steady_us_single", 1e6 * single.steadyMeanSeconds);
    json.set("steady_us_isolated", 1e6 * isolated.steadyMeanSeconds);
    json.set("steady_us_gossip", 1e6 * gossip.steadyMeanSeconds);
    json.setInt("gossip_bytes", gossip.gossipBytes);
    json.setInt("gossip_messages", gossip.gossipMessages);
    bench::writeJson(opt.jsonPath, json);
    std::printf("wrote %s\n", opt.jsonPath.c_str());
  }
  return 0;
}
