// Device characterization (cited approach [7]: Thoman et al., "Automatic
// OpenCL device characterization"): runs micro-kernels of each op class
// through every device model and prints the achieved-throughput profile
// plus the utilization ramp — the raw material behind the mc1/mc2
// asymmetry that Figure 1 exploits.

#include <cstdio>

#include "common/log.hpp"
#include "features/static_features.hpp"
#include "frontend/parser.hpp"
#include "harness_util.hpp"
#include "sim/machine.hpp"

namespace {

tp::features::KernelFeatures microKernel(const char* src) {
  const auto kernel = tp::frontend::parseSingleKernel(src);
  return tp::features::extractFeatures(*kernel);
}

}  // namespace

int main() {
  using namespace tp;
  common::setLogLevel(common::LogLevel::Warn);

  std::printf("=== Device characterization (micro-kernel profiles) ===\n\n");

  // One micro-kernel per op class; K controls per-item work.
  const auto flops = microKernel(R"(
__kernel void f(__global float* a, int K) {
  int i = get_global_id(0);
  float x = 1.0001f;
  for (int k = 0; k < K; k++) { x = x * 1.0001f + 0.5f; }
  a[i] = x;
})");
  const auto specials = microKernel(R"(
__kernel void s(__global float* a, int K) {
  int i = get_global_id(0);
  float x = 0.5f;
  for (int k = 0; k < K; k++) { x = sqrt(x + 1.0f); }
  a[i] = x;
})");
  const auto branches = microKernel(R"(
__kernel void b(__global float* a, int K) {
  int i = get_global_id(0);
  float x = 0.0f;
  for (int k = 0; k < K; k++) {
    if (a[i] > 0.5f) { x += 1.0f; } else { x -= 1.0f; }
  }
  a[i] = x;
})");
  const auto streaming = microKernel(R"(
__kernel void m(__global const float* a, __global float* b, int n) {
  int i = get_global_id(0);
  b[i] = a[i] * 2.0f;
})");

  const std::map<std::string, double> bind = {{"K", 1024.0}};
  const double items = 1 << 22;

  for (const auto& machine : sim::evaluationMachines()) {
    std::printf("--- %s ---\n", machine.name.c_str());
    tp::bench::TablePrinter table(
        {"device", "GFLOP/s", "Gspecial/s", "Gbranch/s", "stream GB/s",
         "PCIe GB/s", "launch us", "util@4K", "util@1M"});
    for (const auto& d : machine.devices) {
      const double tF = d.kernelTime(flops, bind, items, 64.0);
      const double opsF = 2.0 * 1024.0 * items;  // mul+add per iteration
      const double tS = d.kernelTime(specials, bind, items, 64.0);
      const double opsS = 1024.0 * items;
      const double tB = d.kernelTime(branches, bind, items, 64.0);
      const double opsB = 1024.0 * items;
      const double tM = d.kernelTime(streaming, {}, items, 64.0);
      const double bytesM = 8.0 * items;
      table.addRow({d.name, tp::bench::fmt(opsF / tF / 1e9, 1),
                    tp::bench::fmt(opsS / tS / 1e9, 1),
                    tp::bench::fmt(opsB / tB / 1e9, 1),
                    tp::bench::fmt(bytesM / tM / 1e9, 1),
                    tp::bench::fmt(d.transferBandwidth / 1e9, 1),
                    tp::bench::fmt(d.launchOverhead * 1e6, 1),
                    tp::bench::fmt(d.utilization(4096), 2),
                    tp::bench::fmt(d.utilization(1 << 20), 2)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("reading guide: mc1's Radeons have huge raw rates but low "
              "effective FLOPs on untuned scalar code and terrible branch "
              "throughput (VLIW); mc2's GTX 480s retain most of their "
              "advantage — hence CPU-favored mc1 vs GPU-favored mc2.\n");
  return 0;
}
