#include "harness_util.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

namespace tp::bench {

runtime::FeatureDatabase fullSweep(const runtime::PartitioningSpace& space,
                                   std::size_t sizesPerProgram) {
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  const auto machines = sim::evaluationMachines();
  for (const auto& bench : suite::allBenchmarks()) {
    const std::size_t count = sizesPerProgram == 0
                                  ? bench.sizes.size()
                                  : std::min(sizesPerProgram,
                                             bench.sizes.size());
    for (std::size_t s = 0; s < count; ++s) {
      const std::size_t n = bench.sizes[s];
      // One instance serves both machines: tasks are machine-independent.
      auto inst = bench.make(n);
      const std::string sizeLabel = "n=" + std::to_string(n);
      for (const auto& machine : machines) {
        db.add(runtime::measureLaunch(inst.task, machine, space, sizeLabel));
      }
    }
  }
  return db;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::addRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  printRow(headers_);
  std::size_t total = headers_.size() * 2;
  for (const auto w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) printRow(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void JsonObject::set(const std::string& key, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null keeps the document parseable.
    fields_.emplace_back(key, "null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  fields_.emplace_back(key, buf);
}

void JsonObject::setInt(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonObject::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + jsonEscape(value) + "\"");
}

void JsonObject::set(const std::string& key, const char* value) {
  set(key, std::string(value));
}

std::string JsonObject::str() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += "  \"" + jsonEscape(fields_[i].first) + "\": " + fields_[i].second;
    if (i + 1 < fields_.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

void writeJson(const std::string& path, const JsonObject& obj) {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open for writing: " + path);
  os << obj.str();
  if (!os) throw IoError("write failed: " + path);
}

ServeWorkload buildServeWorkload(
    std::size_t programs, const std::vector<sim::MachineConfig>& machines,
    const runtime::PartitioningSpace& space) {
  ServeWorkload workload{
      {}, runtime::FeatureDatabase::withDefaultSchema(space.size())};
  const auto& all = suite::allBenchmarks();
  for (std::size_t b = 0; b < programs && b < all.size(); ++b) {
    const auto& bench = all[b];
    for (std::size_t s = 0; s < std::min<std::size_t>(2, bench.sizes.size());
         ++s) {
      auto inst = bench.make(bench.sizes[s]);
      for (const auto& machine : machines) {
        workload.db.add(runtime::measureLaunch(
            inst.task, machine, space,
            "n=" + std::to_string(bench.sizes[s])));
      }
      workload.tasks.push_back(std::move(inst.task));
    }
  }
  return workload;
}

double serveWave(serve::PartitionService& service,
                 const std::vector<runtime::Task>& tasks,
                 const std::vector<sim::MachineConfig>& machines,
                 std::size_t threads, std::size_t total, std::uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  std::vector<std::thread> clients;
  const std::size_t each = std::max<std::size_t>(1, total / threads);
  for (std::size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      common::Rng rng(seed + c);
      for (std::size_t r = 0; r < each; ++r) {
        serve::LaunchRequest request;
        request.machine = machines[rng.below(machines.size())].name;
        request.task = tasks[rng.below(tasks.size())];
        (void)service.call(std::move(request));
      }
    });
  }
  for (auto& c : clients) c.join();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace tp::bench
