// Ablation A — the poster's central design point: problem-size sensitive
// *runtime* features matter. Compares models trained on static features
// only, runtime features only, and the combined set (with and without PCA).

#include <cstdio>

#include "common/log.hpp"
#include "harness_util.hpp"
#include "ml/normalizer.hpp"
#include "ml/pca.hpp"

int main() {
  using namespace tp;
  common::setLogLevel(common::LogLevel::Warn);

  std::printf("=== Feature-set ablation (static vs runtime vs combined) "
              "===\n\n");

  const runtime::PartitioningSpace space(3, 10);
  const auto db = tp::bench::fullSweep(space);
  const auto factory = [] { return ml::makeClassifier("forest:64"); };

  for (const char* machine : {"mc1", "mc2"}) {
    std::printf("--- %s ---\n", machine);
    tp::bench::TablePrinter table({"feature set", "#features", "exact acc",
                                   "oracle frac", "vs CPU-only",
                                   "vs GPU-only"});
    for (const auto fs : {runtime::FeatureSet::StaticOnly,
                          runtime::FeatureSet::RuntimeOnly,
                          runtime::FeatureSet::Combined}) {
      const auto data = db.toDataset(machine, fs);
      const auto result =
          runtime::evaluateFigure1(db, machine, space, factory, fs);
      table.addRow({runtime::featureSetName(fs),
                    std::to_string(data.numFeatures()),
                    tp::bench::fmt(result.exactLabelAccuracy),
                    tp::bench::fmt(result.oracleFraction),
                    tp::bench::fmt(result.meanSpeedupOverCpu),
                    tp::bench::fmt(result.meanSpeedupOverGpu)});
    }
    table.print();

    // PCA variance profile of the combined feature matrix (the full
    // Insieme pipeline used PCA preprocessing).
    const auto data = db.toDataset(machine, runtime::FeatureSet::Combined);
    ml::Normalizer norm;
    norm.fit(data.X);
    ml::Pca pca;
    pca.fit(norm.transformAll(data.X), 0.95);
    std::printf("PCA: %zu components explain 95%% of combined-feature "
                "variance (of %zu features)\n\n",
                pca.numComponents(), data.numFeatures());
  }
  std::printf("expectation: static-only cannot react to problem size, so "
              "the combined set wins — the paper's core argument.\n");
  return 0;
}
