// Health-layer overhead: what the PR 9 SLO/health stack costs the
// serving hot path on top of the PR 7 obs stack, and what its probes
// cost in nanoseconds.
//
//   - Macro phases replay the serve_throughput warm workload through two
//     configurations, both with the obs baseline attached (metrics
//     registry + idle tracing, exactly the BENCH_obs gate
//     configuration): first without any health machinery, then with
//     per-machine SloTrackers, the full detector-rule set evaluating on
//     a background HealthMonitor, and an attached FlightRecorder. The
//     SLO targets are generous, so the run measures steady-state cost,
//     not breach handling. The ISSUE gate compares the health-on warm
//     throughput against BENCH_obs.json's requests_per_sec_warm with a
//     5% bar (bench.sh / CI).
//   - Micro phases time single probes: SloTracker::record on the live
//     clock, a full SloTracker::report merge, and one HealthMonitor
//     evaluation pass over the service's registered rules.
//
// Usage: health_overhead [--requests N] [--threads T] [--programs P]
//                        [--reps R] [--json PATH] [--baseline-rps RPS]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "harness_util.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "runtime/evaluation.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"

using namespace tp;

namespace {

struct Options {
  // Mirrors obs_overhead: the 5% gate needs the window well above
  // scheduler jitter, and best-of-N absorbs placement luck.
  std::size_t requests = 40000;
  std::size_t reps = 3;
  std::size_t threads = 8;
  std::size_t programs = 8;
  std::string jsonPath;
  /// Externally measured no-health warm rps (e.g. BENCH_obs.json's
  /// requests_per_sec_warm); overrides the in-process baseline for the
  /// overhead percentage.
  double baselineRps = 0.0;
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--programs") {
      opt.programs = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--reps") {
      opt.reps = std::max<std::size_t>(1, std::atoll(value()));
    } else if (arg == "--json") {
      opt.jsonPath = value();
    } else if (arg == "--baseline-rps") {
      opt.baselineRps = std::atof(value());
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\nusage: health_overhead "
                   "[--requests N] [--threads T] [--programs P] "
                   "[--reps R] [--json PATH] [--baseline-rps RPS]\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// Generous-target SLO config: the tracker does its full per-request
/// work (stripe claim, violation checks, lazy rotation) but never
/// breaches, so the wave measures steady-state cost.
obs::SloConfig steadySlo() {
  obs::SloConfig slo;
  slo.windowSeconds = 10.0;
  slo.subWindows = 8;
  slo.targetP99Seconds = 0.5;
  slo.targetP999Seconds = 1.0;
  slo.minSamples = 100;
  return slo;
}

/// One warm service, optionally with the full PR 9 stack riding along:
/// per-machine SLO trackers, the service detector rules on a 10ms
/// background monitor, and an attached (never-triggered, generous
/// targets) flight recorder. Both rigs stay alive for the whole run so
/// their waves can interleave — machine-condition drift between the two
/// configurations would otherwise swamp the overhead being measured.
class Rig {
public:
  Rig(const std::vector<sim::MachineConfig>& machines,
      const runtime::FeatureDatabase& db, obs::Registry* metrics,
      bool withHealth) {
    serve::ServiceConfig config;
    config.cacheCapacity = 1024;
    config.lanesPerMachine = 2;
    config.recordFeedback = false;
    config.metrics = metrics;
    config.metricsPrefix = withHealth ? "bench.health." : "bench.serve.";
    if (withHealth) config.slo = steadySlo();
    service_ = std::make_unique<serve::PartitionService>(config);
    for (const auto& machine : machines) {
      service_->addMachine(
          machine, std::shared_ptr<const ml::Classifier>(
                       runtime::trainDeploymentModel(db, machine.name,
                                                     "forest:32")));
    }
    if (withHealth) {
      obs::FlightRecorderConfig recorderConfig;
      recorderConfig.dir = (std::filesystem::temp_directory_path() /
                            "tp_health_overhead_postmortems")
                               .string();
      recorderConfig.health = &monitor_;
      recorderConfig.metrics = metrics;
      recorder_ = std::make_unique<obs::FlightRecorder>(recorderConfig);
      service_->registerHealthRules(monitor_);
      recorder_->attach();
      monitor_.start(0.01);
    }
  }

  ~Rig() {
    monitor_.stop();
    monitor_.removeRulesByPrefix("");  // rules reference the service
  }

  /// Cold pass filling the decision cache (untimed).
  void coldPass(const Options& opt, const std::vector<runtime::Task>& tasks,
                const std::vector<sim::MachineConfig>& machines) {
    const std::size_t coldRequests =
        std::max<std::size_t>(tasks.size() * machines.size(), 64);
    (void)bench::serveWave(*service_, tasks, machines, opt.threads,
                           coldRequests, 0xC01D);
  }

  /// One timed warm wave; returns requests/sec.
  double wave(const Options& opt, const std::vector<runtime::Task>& tasks,
              const std::vector<sim::MachineConfig>& machines,
              std::uint64_t seed) {
    const auto before = service_->stats();
    const double seconds = bench::serveWave(*service_, tasks, machines,
                                            opt.threads, opt.requests, seed);
    const auto after = service_->stats();
    return static_cast<double>(after.requestsCompleted -
                               before.requestsCompleted) /
           seconds;
  }

private:
  std::unique_ptr<serve::PartitionService> service_;
  obs::HealthMonitor monitor_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
};

/// Nanoseconds per iteration of `body` over `iters` runs (bench/ may use
/// std::chrono directly — see lint rule R8).
template <typename Body>
double nsPerOp(std::size_t iters, Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) body(i);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);
  const Options opt = parseArgs(argc, argv);

  const auto machines = sim::evaluationMachines();
  const runtime::PartitioningSpace space(machines[0].numDevices(), 10);
  auto [tasks, db] = bench::buildServeWorkload(opt.programs, machines, space);

  // ---- macro: warm throughput with and without the health stack ----------
  // Both rigs run the obs-enabled baseline configuration (idle tracing
  // + metrics registry) so the delta isolates the health layer; their
  // warm waves interleave rep by rep and each side reports its best.
  // Discarded warm-up waves absorb frequency ramp and allocator growth.
  obs::TraceRecorder::Config idle;  // default 1-in-64 sampling
  obs::traceRecorder().enable(idle);
  obs::Registry registry;
  double rpsBaseline = 0.0;
  double rpsHealth = 0.0;
  {
    Rig baselineRig(machines, db, &registry, /*withHealth=*/false);
    Rig healthRig(machines, db, &registry, /*withHealth=*/true);
    baselineRig.coldPass(opt, tasks, machines);
    healthRig.coldPass(opt, tasks, machines);
    (void)baselineRig.wave(opt, tasks, machines, 0xD15C);
    (void)healthRig.wave(opt, tasks, machines, 0xD15C);
    for (std::size_t rep = 0; rep < opt.reps; ++rep) {
      rpsBaseline = std::max(
          rpsBaseline, baselineRig.wave(opt, tasks, machines, 0x3A83 + rep));
      rpsHealth = std::max(
          rpsHealth, healthRig.wave(opt, tasks, machines, 0x3A83 + rep));
    }
  }
  obs::traceRecorder().disable();

  // ---- micro: single-probe costs -----------------------------------------
  obs::SloTracker tracker(steadySlo());
  constexpr std::size_t kRecordIters = 1 << 20;
  const double nsSloRecord = nsPerOp(kRecordIters, [&](std::size_t i) {
    tracker.record(100 + (i % 100000));  // live clock, mixed buckets
  });
  constexpr std::size_t kReportIters = 1 << 12;
  const double nsSloReport = nsPerOp(
      kReportIters, [&](std::size_t) { (void)tracker.report(); });

  // One evaluation pass over the real service rule set (the cost the
  // background monitor pays every period).
  double nsHealthEvaluate = 0.0;
  {
    serve::ServiceConfig config;
    config.cacheCapacity = 1024;
    config.recordFeedback = false;
    config.slo = steadySlo();
    serve::PartitionService service(config);
    for (const auto& machine : machines) {
      service.addMachine(
          machine, std::shared_ptr<const ml::Classifier>(
                       runtime::trainDeploymentModel(db, machine.name,
                                                     "forest:32")));
    }
    obs::HealthMonitor monitor;
    service.registerHealthRules(monitor);
    constexpr std::size_t kEvalIters = 1 << 12;
    nsHealthEvaluate = nsPerOp(
        kEvalIters, [&](std::size_t) { (void)monitor.evaluateOnce(); });
    monitor.removeRulesByPrefix("");
  }

  std::printf("health_overhead: %zu clients, %zu warm requests per config\n\n",
              opt.threads, opt.requests);
  bench::TablePrinter table({"configuration", "req/s", "vs baseline"});
  const double baseline =
      opt.baselineRps > 0.0 ? opt.baselineRps : rpsBaseline;
  auto pct = [&](double rps) {
    return bench::fmt(100.0 * (rps - baseline) / baseline, 1) + "%";
  };
  table.addRow({"obs baseline (no health)", bench::fmt(rpsBaseline, 0),
                opt.baselineRps > 0.0 ? pct(rpsBaseline) : "--"});
  table.addRow({"slo + monitor + recorder", bench::fmt(rpsHealth, 0),
                pct(rpsHealth)});
  table.print();
  std::printf("\nmicro-costs (ns/op): slo record %.1f, slo report %.1f, "
              "health evaluate pass %.1f\n",
              nsSloRecord, nsSloReport, nsHealthEvaluate);

  if (!opt.jsonPath.empty()) {
    bench::JsonObject json;
    json.set("bench", "health_overhead");
    json.setInt("threads", opt.threads);
    json.setInt("requests_warm", opt.requests);
    json.setInt("reps", opt.reps);
    // Gate metric: warm throughput with the full health stack riding
    // along. bench.sh / CI compare it against BENCH_obs.json's
    // requests_per_sec_warm with a 5% bar.
    json.set("requests_per_sec_warm", rpsHealth);
    json.set("requests_per_sec_baseline", rpsBaseline);
    json.set("health_overhead_pct",
             100.0 * (baseline - rpsHealth) / baseline);
    json.set("ns_slo_record", nsSloRecord);
    json.set("ns_slo_report", nsSloReport);
    json.set("ns_health_evaluate", nsHealthEvaluate);
    bench::writeJson(opt.jsonPath, json);
    std::printf("\nwrote %s\n", opt.jsonPath.c_str());
  }
  return 0;
}
