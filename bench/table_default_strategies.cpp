// §3 claim reproduction: "Of these two default strategies, in almost all
// test cases, the CPU-only strategy delivers a higher performance on mc1,
// while on mc2 the GPU-only strategy usually performs better."
//
// Prints, per machine, how often each default wins (per launch and per
// program) and the geomean ratio between them.

#include <cstdio>
#include <map>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "harness_util.hpp"

int main() {
  using namespace tp;
  common::setLogLevel(common::LogLevel::Warn);

  std::printf("=== Default strategies: CPU-only vs GPU-only (paper §3) "
              "===\n\n");

  const runtime::PartitioningSpace space(3, 10);
  const auto db = tp::bench::fullSweep(space);
  const std::size_t cpuIdx = space.cpuOnlyIndex();
  const std::size_t gpuIdx = space.singleDeviceIndex(1);

  for (const char* machine : {"mc1", "mc2"}) {
    const auto records = db.forMachine(machine);

    int cpuWins = 0, gpuWins = 0;
    std::map<std::string, std::pair<int, int>> perProgram;  // (cpu, gpu) wins
    std::vector<double> ratios;  // tGpu / tCpu (>1 → CPU better)
    for (const auto* r : records) {
      const double tCpu = r->times[cpuIdx];
      const double tGpu = r->times[gpuIdx];
      ratios.push_back(tGpu / tCpu);
      if (tCpu < tGpu) {
        ++cpuWins;
        ++perProgram[r->program].first;
      } else {
        ++gpuWins;
        ++perProgram[r->program].second;
      }
    }

    int cpuProgs = 0, gpuProgs = 0;
    for (const auto& [program, wins] : perProgram) {
      (void)program;
      if (wins.first >= wins.second) {
        ++cpuProgs;
      } else {
        ++gpuProgs;
      }
    }

    std::printf("--- %s ---\n", machine);
    tp::bench::TablePrinter table({"metric", "CPU-only", "GPU-only"});
    table.addRow({"launch wins", std::to_string(cpuWins),
                  std::to_string(gpuWins)});
    table.addRow({"program-majority wins", std::to_string(cpuProgs),
                  std::to_string(gpuProgs)});
    table.print();
    std::printf("geomean tGPU/tCPU: %.2f  (>1 means the CPU default is "
                "faster)\n",
                common::geomean(ratios));
    const char* expected = std::string(machine) == "mc1"
                               ? "CPU-only should dominate"
                               : "GPU-only should win more often";
    std::printf("paper expectation: %s\n\n", expected);
  }
  return 0;
}
