#pragma once

// Shared infrastructure for the reproduction harnesses in bench/: the full
// training sweep over the 23-program suite, aligned-table printing, and a
// flat JSON emitter so benchmarks can write machine-readable results
// (BENCH_*.json) and the repo accumulates a perf trajectory.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/database.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/partitioning.hpp"

namespace tp::bench {

/// Run the full training sweep: every suite program × its size ladder ×
/// every partitioning × both machines (TimeOnly). `sizesPerProgram` 0 means
/// the full ladder. Deterministic.
runtime::FeatureDatabase fullSweep(const runtime::PartitioningSpace& space,
                                   std::size_t sizesPerProgram = 0);

/// Fixed-width table printer (plain text, reproducible in logs).
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> headers);
  void addRow(std::vector<std::string> cells);
  void print() const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 2);

/// Flat JSON object (insertion order preserved). Values are numbers or
/// strings; doubles render with enough digits to round-trip.
class JsonObject {
public:
  void set(const std::string& key, double value);
  void setInt(const std::string& key, std::uint64_t value);
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value);

  std::string str() const;

private:
  std::vector<std::pair<std::string, std::string>> fields_;  ///< key → JSON
};

/// Write `obj` to `path` (truncating); throws tp::IoError on failure.
void writeJson(const std::string& path, const JsonObject& obj);

}  // namespace tp::bench
