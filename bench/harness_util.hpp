#pragma once

// Shared infrastructure for the reproduction harnesses in bench/: the full
// training sweep over the 23-program suite, aligned-table printing, and a
// flat JSON emitter so benchmarks can write machine-readable results
// (BENCH_*.json) and the repo accumulates a perf trajectory.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/database.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/partitioning.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"

namespace tp::bench {

/// Run the full training sweep: every suite program × its size ladder ×
/// every partitioning × both machines (TimeOnly). `sizesPerProgram` 0 means
/// the full ladder. Deterministic.
runtime::FeatureDatabase fullSweep(const runtime::PartitioningSpace& space,
                                   std::size_t sizesPerProgram = 0);

/// Fixed-width table printer (plain text, reproducible in logs).
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> headers);
  void addRow(std::vector<std::string> cells);
  void print() const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 2);

/// Flat JSON object (insertion order preserved). Values are numbers or
/// strings; doubles render with enough digits to round-trip.
class JsonObject {
public:
  void set(const std::string& key, double value);
  void setInt(const std::string& key, std::uint64_t value);
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value);

  std::string str() const;

private:
  std::vector<std::pair<std::string, std::string>> fields_;  ///< key → JSON
};

/// Write `obj` to `path` (truncating); throws tp::IoError on failure.
void writeJson(const std::string& path, const JsonObject& obj);

/// Shared workload of the serving benchmarks (serve_throughput,
/// serve_scaling): the first `programs` suite benchmarks x up to 2 sizes
/// as launchable tasks, plus the full per-machine training sweep for
/// deployment models. One definition, so every serving bench measures
/// the same traffic mix.
struct ServeWorkload {
  std::vector<runtime::Task> tasks;
  runtime::FeatureDatabase db;
};
ServeWorkload buildServeWorkload(std::size_t programs,
                                 const std::vector<sim::MachineConfig>& machines,
                                 const runtime::PartitioningSpace& space);

/// Closed-loop client wave: `threads` clients issue `total` requests
/// (split evenly) of random (task, machine) pairs through
/// service.call() — warm hits ride the inline fast path. Returns wall
/// seconds.
double serveWave(serve::PartitionService& service,
                 const std::vector<runtime::Task>& tasks,
                 const std::vector<sim::MachineConfig>& machines,
                 std::size_t threads, std::size_t total, std::uint64_t seed);

}  // namespace tp::bench
