#pragma once

// Shared infrastructure for the reproduction harnesses in bench/: the full
// training sweep over the 23-program suite and aligned-table printing.

#include <string>
#include <vector>

#include "runtime/database.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/partitioning.hpp"

namespace tp::bench {

/// Run the full training sweep: every suite program × its size ladder ×
/// every partitioning × both machines (TimeOnly). `sizesPerProgram` 0 means
/// the full ladder. Deterministic.
runtime::FeatureDatabase fullSweep(const runtime::PartitioningSpace& space,
                                   std::size_t sizesPerProgram = 0);

/// Fixed-width table printer (plain text, reproducible in logs).
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> headers);
  void addRow(std::vector<std::string> cells);
  void print() const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 2);

}  // namespace tp::bench
