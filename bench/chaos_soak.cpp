// Chaos soak: a replicated serving fleet survives a seeded fault
// schedule and converges after it heals.
//
// A manual 3-replica fleet (the same wiring fleet::Fleet does, minus the
// class — so replicas can be killed and restarted mid-run) serves Zipf
// traffic through every phase of a scripted chaos schedule:
//
//   warmup      — clean traffic, gossip rounds, periodic snapshots
//   drop storm  — FaultyTransport default plan: drops, corruption,
//                 duplicates, delays (ends itself via the seen-count
//                 schedule); gossip keeps running through it
//   partition   — the coordinator is cut off: its solo retrain aborts
//                 without quorum while the majority side retrains
//                 successfully; then the partition heals
//   kill        — one replica is destroyed mid-gossip, its newest
//                 snapshot is corrupted on disk, and the restart
//                 warm-starts from the salvaged older snapshot
//   overload    — an impossible SLO trips the admission breaker on the
//                 coordinator (hysteresis, then shedding); the window
//                 drains and the breaker closes; the load_shed health
//                 rule emits exactly one deduped breach/clear pair and
//                 the flight recorder dumps a postmortem bundle
//   calm        — one clean fleet retrain, convergence traffic and
//                 anti-entropy refresh rounds
//
// Post-heal assertions (the run exits non-zero if any fails):
//   - decision equivalence: identical model predictions on every replica
//     AND identical refined incumbents per key after anti-entropy;
//   - counter reconciliation: the FaultyTransport injection identity,
//     the inner transport's sent/delivered/dropped identity, and each
//     replica's winsReceived == winsMerged + winsRejectedStale +
//     winsDropped;
//   - exactly one load_shed breach/clear pair (deduped health events);
//   - the restarted replica salvaged a corrupt snapshot.
//
// Usage: chaos_soak [--waves W] [--requests R] [--seed S] [--json PATH]
//                   [--postmortem-dir DIR] [--state-dir DIR]
//
// With --json the headline numbers (shed rate, breaker recovery time,
// injected-fault counters, convergence checks) are written as a flat
// JSON object; scripts/bench.sh appends it to the repo trajectory as
// BENCH_soak.json, and CI's chaos-smoke step validates the postmortem
// bundle with scripts/validate_postmortem.py.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "fleet/faulty_transport.hpp"
#include "fleet/gossip.hpp"
#include "fleet/replica.hpp"
#include "fleet/transport.hpp"
#include "harness_util.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

struct Options {
  std::size_t replicas = 3;
  std::size_t waves = 4;       ///< calm convergence waves after the chaos
  std::size_t requests = 240;  ///< traffic requests per wave
  std::uint64_t seed = 0xC405u;
  std::string jsonPath;
  std::string postmortemDir;
  std::string stateDir = "chaos_soak_state";  ///< snapshot root (wiped)
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--waves") {
      opt.waves = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--requests") {
      opt.requests = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--json") {
      opt.jsonPath = value();
    } else if (arg == "--postmortem-dir") {
      opt.postmortemDir = value();
    } else if (arg == "--state-dir") {
      opt.stateDir = value();
    } else {
      std::fprintf(stderr,
                   "usage: chaos_soak [--waves W] [--requests R] [--seed S] "
                   "[--json PATH] [--postmortem-dir DIR] [--state-dir DIR]\n");
      std::exit(2);
    }
  }
  return opt;
}

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "chaos_soak: FAIL: %s\n", what.c_str());
}

// ---- workload --------------------------------------------------------------

struct Workload {
  std::vector<sim::MachineConfig> machines = sim::evaluationMachines();
  std::vector<runtime::Task> tasks;
  std::shared_ptr<const ml::Classifier> weakModel;
  std::vector<double> zipfCdf;  ///< over distinct (task, machine) launches

  explicit Workload(std::size_t programs, std::size_t sizesPerProgram) {
    const auto& all = suite::allBenchmarks();
    for (std::size_t b = 0; b < programs && b < all.size(); ++b) {
      for (std::size_t s = 0;
           s < std::min(sizesPerProgram, all[b].sizes.size()); ++s) {
        tasks.push_back(all[b].make(all[b].sizes[s]).task);
      }
    }
    const runtime::PartitioningSpace space(machines[0].numDevices(), 10);
    ml::Dataset seed;
    seed.numClasses = static_cast<int>(space.size());
    seed.featureNames = {"f0"};
    seed.add({0.0}, static_cast<int>(space.cpuOnlyIndex()), "seed");
    auto model = ml::makeClassifier("mostfreq");
    model->train(seed);
    weakModel = std::shared_ptr<const ml::Classifier>(std::move(model));

    // Zipf(1.1) over the distinct launches: realistic skew — a few hot
    // launches dominate, the tail still shows up.
    double total = 0.0;
    for (std::size_t i = 0; i < distinctLaunches(); ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
      zipfCdf.push_back(total);
    }
  }

  std::size_t distinctLaunches() const {
    return tasks.size() * machines.size();
  }

  std::size_t zipfDraw(common::Rng& rng) const {
    const double u = rng.uniform(0.0, zipfCdf.back());
    const auto it = std::lower_bound(zipfCdf.begin(), zipfCdf.end(), u);
    return static_cast<std::size_t>(it - zipfCdf.begin()) % distinctLaunches();
  }

  serve::LaunchRequest request(std::size_t launch) const {
    serve::LaunchRequest r;
    r.machine = machines[launch % machines.size()].name;
    r.task = tasks[(launch / machines.size()) % tasks.size()];
    return r;
  }
};

// ---- manual fleet ----------------------------------------------------------

/// What fleet::Fleet wires up internally, held by hand so the soak can
/// destroy and reconstruct individual replicas mid-run.
struct SoakFleet {
  const Options& opt;
  const Workload& wl;
  fleet::LoopbackTransport inner;
  fleet::FaultyTransport net;
  fleet::GossipBus bus;
  std::vector<std::unique_ptr<fleet::Replica>> replicas;

  SoakFleet(const Options& options, const Workload& workload)
      : opt(options), wl(workload), net(inner, options.seed) {
    for (std::size_t r = 0; r < opt.replicas; ++r) {
      replicas.push_back(makeReplica(r));
    }
  }

  fleet::ReplicaConfig configFor(std::size_t index) const {
    fleet::ReplicaConfig rc;
    rc.id = "replica-" + std::to_string(index);
    rc.service.refine = true;
    rc.service.lanesPerMachine = 2;
    rc.service.refiner.exploreFraction = 0.4;
    rc.service.refiner.probeSamples = 1;
    rc.service.refiner.neighborRadius = 2;
    rc.service.refiner.seed = 0xF1EE7ull + 0x9E3779B9ull * index;
    rc.service.metrics = &obs::defaultRegistry();
    // Registry names reject '-' (the id is a transport address).
    rc.service.metricsPrefix = "replica_" + std::to_string(index) + ".serve.";
    // Impossible SLO + breaker with evaluation pushed out of reach: the
    // overload phase trips it deterministically via evaluateBreakerNow.
    rc.service.slo.windowSeconds = 0.25;
    rc.service.slo.subWindows = 2;
    rc.service.slo.targetP99Seconds = 1e-9;
    rc.service.slo.minSamples = 8;
    rc.service.breaker.enabled = true;
    rc.service.breaker.burnRateCeiling = 1.0;
    rc.service.breaker.tripAfter = 2;
    rc.service.breaker.clearAfter = 2;
    rc.service.breaker.evalEvery = std::uint64_t{1} << 30;
    rc.snapshotDir = opt.stateDir + "/" + rc.id;
    rc.retrainWaitSeconds = 0.25;  // partitioned peers abort fast
    rc.retryBackoffBaseSeconds = 0.0;  // failed peers retry next round
    rc.retryBackoffCapSeconds = 0.0;
    rc.gossipRefreshRounds = 2;  // restarted replicas reconverge quickly
    return rc;
  }

  std::unique_ptr<fleet::Replica> makeReplica(std::size_t index) {
    auto replica =
        std::make_unique<fleet::Replica>(configFor(index), net, &bus);
    for (const auto& machine : wl.machines) {
      replica->addMachine(machine, wl.weakModel);
    }
    return replica;
  }

  fleet::Replica& at(std::size_t index) { return *replicas[index]; }

  /// Issue `count` Zipf-drawn requests round-robin across live replicas
  /// (or at one replica when `only` is set). Returns sheds observed.
  std::uint64_t trafficWave(common::Rng& rng, std::size_t count,
                            std::ptrdiff_t only = -1) {
    std::uint64_t shed = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t r = only >= 0 ? static_cast<std::size_t>(only)
                                      : i % replicas.size();
      if (!replicas[r]) continue;  // killed
      const auto response =
          replicas[r]->call(wl.request(wl.zipfDraw(rng)));
      if (response.shed) {
        ++shed;
      } else {
        check(response.execution.makespan > 0.0,
              "served response with zero makespan");
      }
    }
    return shed;
  }

  void saveSnapshots() {
    for (auto& replica : replicas) {
      if (replica) (void)replica->saveSnapshot();
    }
  }
};

/// Corrupt the highest-sequence snapshot file under `dir` so the next
/// warm start must salvage the one before it.
void corruptNewestSnapshot(const std::string& dir) {
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0 && name > newest) newest = name;
  }
  check(!newest.empty(), "no snapshot to corrupt under " + dir);
  if (newest.empty()) return;
  std::ofstream out(dir + "/" + newest,
                    std::ios::binary | std::ios::trunc);
  out << "bit rot, definitely not a snapshot";
}

/// Refiner incumbents as a comparable map: key-identity -> incumbent
/// label, over EVERY tracked key. Keys without an adopted win carry the
/// (shared) model's label; adopted wins are gossiped — so after
/// anti-entropy the full maps must agree across replicas.
std::map<std::string, std::size_t> incumbentMap(fleet::Replica& replica) {
  std::map<std::string, std::size_t> map;
  for (const auto& win :
       replica.service().exportRefinedWins(/*refinedOnly=*/false)) {
    std::string id = win.key.machine + "|" + win.key.program;
    for (const double v : win.key.signature) {
      id += "|" + std::to_string(v);
    }
    map[id] = win.incumbentLabel;
  }
  return map;
}

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);
  const Options opt = parseArgs(argc, argv);
  const Workload wl(/*programs=*/6, /*sizesPerProgram=*/2);
  std::filesystem::remove_all(opt.stateDir);
  if (!opt.postmortemDir.empty()) obs::traceRecorder().enable();

  std::printf("chaos_soak: %zu launches x %zu machines, %zu replicas, "
              "seed 0x%llx\n",
              wl.tasks.size(), wl.machines.size(), opt.replicas,
              static_cast<unsigned long long>(opt.seed));

  SoakFleet fleet(opt, wl);
  common::Rng traffic(opt.seed ^ 0x7EAFF1Cull);

  // Health + black box on the coordinator (replica 0 — never killed, so
  // the rule closures cannot dangle).
  obs::HealthMonitor monitor;
  fleet::FleetHealthConfig health;
  health.gossipStallEvals = 100;  // manual rounds; liveness not under test
  fleet.at(0).registerHealthRules(monitor, health);
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!opt.postmortemDir.empty()) {
    obs::FlightRecorderConfig frc;
    frc.dir = opt.postmortemDir;
    frc.metrics = &obs::defaultRegistry();
    frc.trace = &obs::traceRecorder();
    frc.health = &monitor;
    recorder = std::make_unique<obs::FlightRecorder>(frc);
    recorder->attach();
  }

  // ---- warmup --------------------------------------------------------------
  for (int wave = 0; wave < 2; ++wave) {
    (void)fleet.trafficWave(traffic, opt.requests);
    fleet.bus.runRound();
    fleet.saveSnapshots();
    (void)monitor.evaluateOnce();
  }

  // ---- drop storm ----------------------------------------------------------
  // The storm plan applies immediately and schedules its own end: after
  // 36 more link-messages the default plan reverts to clean (exercising
  // the seen-count schedule in anger). Gossip runs straight through it.
  {
    fleet::FaultPlan storm;
    storm.dropProbability = 0.25;
    storm.corruptProbability = 0.10;
    storm.duplicateProbability = 0.10;
    storm.delayProbability = 0.10;
    fleet.net.setDefaultPlan(storm);
    fleet.net.scheduleDefaultPlan(fleet.net.faultCounters().seen + 36, {});
  }
  for (int wave = 0; wave < 3; ++wave) {
    (void)fleet.trafficWave(traffic, opt.requests);
    fleet.bus.runRound();
    (void)monitor.evaluateOnce();
  }
  fleet.net.clearFaults();
  (void)fleet.net.flushDelayed();
  check(fleet.net.pendingDelayed() == 0, "delayed messages still pending");

  // ---- partition -----------------------------------------------------------
  // replica-0 is cut off from the majority. Its solo retrain must abort
  // as a safe no-op; the majority side (replica-1 + replica-2) retrains
  // successfully without it.
  fleet.net.partition("replica-0", "replica-1");
  fleet.net.partition("replica-0", "replica-2");
  const auto solo = fleet.at(0).coordinateRetrain();
  check(solo.aborted, "partitioned coordinator did not abort");
  check(solo.leaseGrants == 1, "partitioned coordinator heard peer grants");
  const auto majority = fleet.at(1).coordinateRetrain();
  check(!majority.aborted, "majority-side retrain aborted");
  check(fleet.at(2).service().modelVersion() == majority.modelVersion,
        "majority peer missed the install");
  check(fleet.at(0).service().modelVersion() < majority.modelVersion,
        "partitioned replica received an install through the partition");
  (void)fleet.trafficWave(traffic, opt.requests);  // serving is unaffected
  fleet.net.heal();
  fleet.bus.runRound();
  (void)monitor.evaluateOnce();

  // ---- kill / restart ------------------------------------------------------
  // replica-2 dies mid-gossip; its newest snapshot rots on disk; the
  // restart salvages the next-older snapshot and rejoins the fleet.
  fleet.saveSnapshots();
  fleet.replicas[2].reset();  // leaves the bus, detaches from the net
  fleet.bus.runRound();       // the survivors gossip without it
  (void)fleet.trafficWave(traffic, opt.requests);
  corruptNewestSnapshot(opt.stateDir + "/replica-2");
  fleet.replicas[2] = fleet.makeReplica(2);
  check(fleet.at(2).warmStart(), "restarted replica could not warm-start");
  const auto salvaged = fleet.at(2).stats().fleet;
  check(salvaged.snapshotsSalvaged == 1,
        "restart did not salvage the corrupt snapshot");
  check(salvaged.snapshotsLoaded == 1, "restart loaded no snapshot");
  fleet.bus.runRound();
  fleet.bus.runRound();  // refresh rounds reconverge the rejoiner

  // ---- overload (breaker + load shedding) ----------------------------------
  // Prime the impossible SLO with enough samples, then trip replica-0's
  // breakers deterministically: one evaluation arms the streak, the
  // second opens. Shed traffic, let the window drain, close again.
  (void)fleet.trafficWave(traffic, 48, /*only=*/0);
  for (const auto& machine : wl.machines) {
    check(fleet.at(0).service().sloReport(machine.name).breached,
          "impossible SLO not breached on " + machine.name);
    fleet.at(0).service().evaluateBreakerNow(machine.name);
    fleet.at(0).service().evaluateBreakerNow(machine.name);
    check(fleet.at(0).service().breakerOpen(machine.name),
          "breaker did not open on " + machine.name);
  }
  const std::uint64_t openTicks = obs::nowTicks();
  const std::uint64_t shedBefore = fleet.at(0).stats().requestsShed;
  const std::size_t overloadRequests = 40;
  const std::uint64_t shed =
      fleet.trafficWave(traffic, overloadRequests, /*only=*/0);
  check(shed == overloadRequests, "open breaker served traffic");
  check(fleet.at(0).stats().requestsShed == shedBefore + shed,
        "requestsShed does not match observed sheds");
  (void)monitor.evaluateOnce();  // load_shed breach (one event + bundle)
  (void)monitor.evaluateOnce();  // sustained: suppressed, no second event
  // Shed responses record no latency, so the window drains while open.
  std::this_thread::sleep_for(std::chrono::milliseconds(320));
  for (const auto& machine : wl.machines) {
    fleet.at(0).service().evaluateBreakerNow(machine.name);
    fleet.at(0).service().evaluateBreakerNow(machine.name);
    check(!fleet.at(0).service().breakerOpen(machine.name),
          "breaker did not close after the window drained");
  }
  const double breakerRecoverySeconds =
      static_cast<double>(obs::nowTicks() - openTicks) / 1e9;
  (void)monitor.evaluateOnce();  // clear streak (rule clearAfter = 2)
  (void)monitor.evaluateOnce();

  // ---- calm: reconverge ----------------------------------------------------
  // One clean fleet-wide retrain from the majority side (replica-1 holds
  // the highest generation), then identical convergence traffic on every
  // replica plus anti-entropy refresh rounds.
  const auto calm = fleet.at(1).coordinateRetrain();
  check(!calm.aborted, "post-heal retrain aborted");
  for (std::size_t r = 0; r < opt.replicas; ++r) {
    check(fleet.at(r).service().modelVersion() == calm.modelVersion,
          "replica-" + std::to_string(r) + " missed the final install");
  }
  for (std::size_t wave = 0; wave < opt.waves; ++wave) {
    for (std::size_t launch = 0; launch < wl.distinctLaunches(); ++launch) {
      for (std::size_t r = 0; r < opt.replicas; ++r) {
        (void)fleet.at(r).call(wl.request(launch));
      }
    }
    fleet.bus.runRound();
    (void)monitor.evaluateOnce();
  }
  for (int round = 0; round < 4; ++round) fleet.bus.runRound();

  // ---- post-heal convergence -----------------------------------------------
  std::uint64_t predictMismatches = 0;
  for (const auto& machine : wl.machines) {
    for (const auto& task : wl.tasks) {
      const auto expected = fleet.at(0).service().predictLabel(
          machine.name, task);
      for (std::size_t r = 1; r < opt.replicas; ++r) {
        if (fleet.at(r).service().predictLabel(machine.name, task) !=
            expected) {
          ++predictMismatches;
        }
      }
    }
  }
  check(predictMismatches == 0, "model predictions diverge across replicas");

  std::uint64_t incumbentMismatches = 0;
  const auto reference = incumbentMap(fleet.at(0));
  check(!reference.empty(), "no refined incumbents after the soak");
  for (std::size_t r = 1; r < opt.replicas; ++r) {
    if (incumbentMap(fleet.at(r)) != reference) ++incumbentMismatches;
  }
  check(incumbentMismatches == 0,
        "refined incumbents diverge across replicas after anti-entropy");

  // ---- counter reconciliation ----------------------------------------------
  const auto faults = fleet.net.faultCounters();
  {
    const std::uint64_t clean =
        faults.seen - faults.injectedDrops - faults.partitionedDrops -
        faults.injectedThrows - faults.injectedCorruptions -
        faults.injectedDuplicates - faults.injectedDelays;
    check(faults.forwarded == clean + faults.injectedCorruptions +
                                  2 * faults.injectedDuplicates +
                                  faults.deliveredLate,
          "FaultyTransport forwarding identity violated");
    check(faults.deliveredLate == faults.injectedDelays,
          "delayed messages not fully released");
  }
  const auto inner = fleet.inner.counters();
  check(inner.sent == inner.delivered + inner.dropped,
        "inner transport sent != delivered + dropped");
  check(inner.deliveryFailures == 0,
        "replica handlers leaked exceptions into the transport");
  std::uint64_t retrainsAborted = 0;
  for (std::size_t r = 0; r < opt.replicas; ++r) {
    const auto stats = fleet.at(r).stats();
    check(stats.fleet.winsReceived ==
              stats.fleet.winsMerged + stats.fleet.winsRejectedStale +
                  stats.fleet.winsDropped,
          "replica-" + std::to_string(r) + " wins identity violated");
    check(stats.requestsCompleted == stats.requestsSubmitted,
          "replica-" + std::to_string(r) + " lost requests");
    retrainsAborted += stats.fleet.retrainsAborted;
  }
  check(retrainsAborted == 1, "unexpected retrain abort count");

  // ---- deduped health events -----------------------------------------------
  std::uint64_t shedBreaches = 0, shedClears = 0;
  for (const auto& event : monitor.events()) {
    if (event.rule.find("load_shed") == std::string::npos) continue;
    event.cleared ? ++shedClears : ++shedBreaches;
  }
  check(shedBreaches == 1, "load_shed breach events not deduped");
  check(shedClears == 1, "load_shed did not clear exactly once");
  if (recorder) {
    check(recorder->bundleCount() >= 1, "no postmortem bundle dumped");
  }

  // ---- report --------------------------------------------------------------
  std::uint64_t decodeFailures = 0, replaysRejected = 0, sendFailures = 0,
                sendRetries = 0;
  for (std::size_t r = 0; r < opt.replicas; ++r) {
    const auto g = fleet.at(r).gossipCounters();
    decodeFailures += g.decodeFailures;
    replaysRejected += g.replaysRejected;
    sendFailures += g.sendFailures;
    sendRetries += g.sendRetries;
  }
  const double shedRate =
      static_cast<double>(shed) / static_cast<double>(overloadRequests);

  bench::TablePrinter table({"metric", "value"});
  const auto row = [&](const char* name, double v, int precision = 0) {
    table.addRow({name, bench::fmt(v, precision)});
  };
  row("injected drops", static_cast<double>(faults.injectedDrops));
  row("injected throws", static_cast<double>(faults.injectedThrows));
  row("injected corruptions",
      static_cast<double>(faults.injectedCorruptions));
  row("injected duplicates",
      static_cast<double>(faults.injectedDuplicates));
  row("injected delays", static_cast<double>(faults.injectedDelays));
  row("partitioned drops", static_cast<double>(faults.partitionedDrops));
  row("decode failures", static_cast<double>(decodeFailures));
  row("replays rejected", static_cast<double>(replaysRejected));
  row("send failures", static_cast<double>(sendFailures));
  row("send retries", static_cast<double>(sendRetries));
  row("requests shed", static_cast<double>(shed));
  row("shed rate (overload)", shedRate, 2);
  row("breaker recovery s", breakerRecoverySeconds, 3);
  row("gossip round errors",
      static_cast<double>(fleet.bus.roundErrors()));
  row("convergence mismatches",
      static_cast<double>(predictMismatches + incumbentMismatches));
  table.print();

  if (!opt.jsonPath.empty()) {
    bench::JsonObject json;
    json.set("bench", "chaos_soak");
    json.setInt("seed", opt.seed);
    json.setInt("calm_waves", opt.waves);
    json.setInt("requests_per_wave", opt.requests);
    json.setInt("injected_drops", faults.injectedDrops);
    json.setInt("injected_throws", faults.injectedThrows);
    json.setInt("injected_corruptions", faults.injectedCorruptions);
    json.setInt("injected_duplicates", faults.injectedDuplicates);
    json.setInt("injected_delays", faults.injectedDelays);
    json.setInt("partitioned_drops", faults.partitionedDrops);
    json.setInt("decode_failures", decodeFailures);
    json.setInt("replays_rejected", replaysRejected);
    json.setInt("send_failures", sendFailures);
    json.setInt("send_retries", sendRetries);
    json.setInt("requests_shed", shed);
    json.set("shed_rate_overload", shedRate);
    json.set("breaker_recovery_seconds", breakerRecoverySeconds);
    json.setInt("retrains_aborted", retrainsAborted);
    json.setInt("snapshots_salvaged", salvaged.snapshotsSalvaged);
    json.setInt("gossip_round_errors", fleet.bus.roundErrors());
    json.setInt("predict_mismatches", predictMismatches);
    json.setInt("incumbent_mismatches", incumbentMismatches);
    json.setInt("load_shed_breaches", shedBreaches);
    json.setInt("load_shed_clears", shedClears);
    json.setInt("check_failures", static_cast<std::uint64_t>(failures));
    bench::writeJson(opt.jsonPath, json);
    std::printf("wrote %s\n", opt.jsonPath.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "chaos_soak: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("chaos_soak: all post-heal checks passed\n");
  return 0;
}
