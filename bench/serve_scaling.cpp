// Warm-path thread-scaling sweep: closed-loop warm throughput of
// tp::serve at 1/2/4/8/16 client threads against one shared service.
//
// Usage: serve_scaling [--requests N] [--programs P] [--json PATH]
//
// `--requests` is the per-sweep-point warm request budget. The cache is
// filled once before the sweep, so every timed wave exercises the inline
// hit path. With --json the per-thread-count throughputs are written as a
// flat JSON object (scripts/bench.sh appends it to the repo's perf
// trajectory as BENCH_serve_scaling.json).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "harness_util.hpp"
#include "runtime/evaluation.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

struct Options {
  std::size_t requests = 20000;  ///< per sweep point and repetition
  std::size_t reps = 3;          ///< repetitions per point (best kept)
  std::size_t programs = 8;
  std::string jsonPath;
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--reps") {
      opt.reps = std::max<std::size_t>(1, static_cast<std::size_t>(
                                              std::atoll(value())));
    } else if (arg == "--programs") {
      opt.programs = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--json") {
      opt.jsonPath = value();
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\nusage: serve_scaling "
                   "[--requests N] [--reps R] [--programs P] [--json PATH]\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);
  const Options opt = parseArgs(argc, argv);

  const auto machines = sim::evaluationMachines();
  const runtime::PartitioningSpace space(machines[0].numDevices(), 10);

  // Shared with serve_throughput: one definition of the traffic mix.
  auto [tasks, db] = bench::buildServeWorkload(opt.programs, machines, space);

  serve::ServiceConfig config;
  config.cacheCapacity = 1024;
  config.lanesPerMachine = 2;
  config.inlineLanes = 32;  // cover the widest sweep point
  config.recordFeedback = false;  // isolate the serving hot path
  serve::PartitionService service(config);
  for (const auto& machine : machines) {
    service.addMachine(
        machine, std::shared_ptr<const ml::Classifier>(
                     runtime::trainDeploymentModel(db, machine.name,
                                                   "forest:32")));
  }

  // Fill the cache once; the sweep below times pure warm traffic.
  const std::size_t warmup =
      std::max<std::size_t>(tasks.size() * machines.size(), 64);
  (void)bench::serveWave(service, tasks, machines, 2, warmup, 0xF111);

  const std::vector<std::size_t> sweep = {1, 2, 4, 8, 16};
  std::vector<double> rps(sweep.size(), 0.0);
  bench::TablePrinter table({"threads", "requests", "req/s", "hit-rate"});
  auto before = service.stats();
  for (std::size_t p = 0; p < sweep.size(); ++p) {
    // Best of `reps`: sweep points are short, so one descheduled client
    // (or the thread-spawn cost itself) can dominate a single wave.
    double best = 0.0;
    std::uint64_t requests = 0;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    for (std::size_t rep = 0; rep < opt.reps; ++rep) {
      const double seconds =
          bench::serveWave(service, tasks, machines, sweep[p], opt.requests,
                           0x5CA1E + 31 * p + 7 * rep);
      const auto after = service.stats();
      const auto served = after.requestsCompleted - before.requestsCompleted;
      best = std::max(best, static_cast<double>(served) / seconds);
      requests += served;
      lookups += after.cache.lookups - before.cache.lookups;
      hits += after.cache.hits - before.cache.hits;
      before = after;
    }
    rps[p] = best;
    table.addRow({std::to_string(sweep[p]), std::to_string(requests),
                  bench::fmt(rps[p], 0),
                  bench::fmt(lookups == 0 ? 0.0
                                          : 100.0 * static_cast<double>(hits) /
                                                static_cast<double>(lookups),
                             1) +
                      "%"});
  }

  std::printf("serve_scaling: %zu launches x %zu machines, %zu warm "
              "requests x %zu reps per point (best kept)\n\n",
              tasks.size(), machines.size(), opt.requests, opt.reps);
  table.print();

  if (!opt.jsonPath.empty()) {
    bench::JsonObject json;
    json.set("bench", "serve_scaling");
    json.setInt("programs", opt.programs);
    json.setInt("requests_per_point", opt.requests);
    json.setInt("distinct_launches", tasks.size() * machines.size());
    for (std::size_t p = 0; p < sweep.size(); ++p) {
      json.set("requests_per_sec_t" + std::to_string(sweep[p]), rps[p]);
    }
    const auto stats = service.stats();
    json.setInt("requests_inline", stats.requestsInline);
    json.set("hit_rate_total", stats.cacheHitRate);
    bench::writeJson(opt.jsonPath, json);
    std::printf("\nwrote %s\n", opt.jsonPath.c_str());
  }
  return 0;
}
