// §1/§4 claim reproduction: "the optimal task partitioning does depend on
// the program, the target architecture, as well as the problem size."
//
// Prints, for every program, the oracle-best partitioning (CPU/GPU0/GPU1
// percentages) at each problem size on both machines, and summarizes how
// many programs change their optimum across sizes / across machines.

#include <cstdio>
#include <set>

#include "common/log.hpp"
#include "harness_util.hpp"

int main() {
  using namespace tp;
  common::setLogLevel(common::LogLevel::Warn);

  std::printf("=== Size sensitivity of the optimal partitioning ===\n\n");

  const runtime::PartitioningSpace space(3, 10);
  const auto db = tp::bench::fullSweep(space);

  tp::bench::TablePrinter table(
      {"program", "size", "best on mc1", "best on mc2"});

  // Records alternate mc1/mc2 per (program, size) in sweep order.
  const auto mc1 = db.forMachine("mc1");
  const auto mc2 = db.forMachine("mc2");
  int sizeSensitive1 = 0, sizeSensitive2 = 0, machineSensitive = 0;
  std::string current;
  std::set<int> labels1, labels2;
  int machineDiffers = 0;

  auto flushProgram = [&]() {
    if (current.empty()) return;
    if (labels1.size() > 1) ++sizeSensitive1;
    if (labels2.size() > 1) ++sizeSensitive2;
    if (machineDiffers > 0) ++machineSensitive;
    labels1.clear();
    labels2.clear();
    machineDiffers = 0;
  };

  for (std::size_t i = 0; i < mc1.size(); ++i) {
    const auto* r1 = mc1[i];
    const auto* r2 = mc2[i];
    if (r1->program != current) {
      flushProgram();
      current = r1->program;
    }
    const int b1 = r1->bestLabel();
    const int b2 = r2->bestLabel();
    labels1.insert(b1);
    labels2.insert(b2);
    if (b1 != b2) ++machineDiffers;
    table.addRow({r1->program, r1->sizeLabel,
                  space.at(static_cast<std::size_t>(b1)).toString(),
                  space.at(static_cast<std::size_t>(b2)).toString()});
  }
  flushProgram();

  table.print();
  std::printf(
      "\nprograms whose optimum changes with problem size:  mc1: %d/23, "
      "mc2: %d/23\n",
      sizeSensitive1, sizeSensitive2);
  std::printf(
      "programs whose optimum differs between machines (some size): %d/23\n",
      machineSensitive);
  std::printf("paper expectation: the optimum depends on program, size AND "
              "machine\n");
  return 0;
}
