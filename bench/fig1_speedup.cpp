// Figure 1 reproduction (the paper's headline result).
//
// For each of the two machines: run the full training sweep, evaluate the
// ML-guided partitioning with leave-one-program-out cross-validation, and
// print, per program, the speedup of the predicted partitioning over the
// CPU-only and GPU-only default strategies (geometric mean across problem
// sizes), plus the suite-wide averages the figure annotates.
//
// Expected shape (not absolute numbers — our devices are analytic models):
//   * the ML approach beats both defaults on average on both machines;
//   * CPU-only is the stronger default on mc1, GPU-only on mc2;
//   * a few programs show order-of-magnitude outliers against the
//     unfavourable default (the paper labels 13.5, 19.8, 5.7, 4.9).

#include <cstdio>

#include "common/log.hpp"
#include "harness_util.hpp"
#include "ml/classifier.hpp"

int main() {
  using namespace tp;
  common::setLogLevel(common::LogLevel::Warn);

  std::printf("=== Figure 1: speedup of ML-guided task partitioning over "
              "CPU-only / GPU-only ===\n\n");

  const runtime::PartitioningSpace space(3, 10);
  std::printf("partitioning space: %zu partitionings (10%% steps, 3 "
              "devices)\n\n",
              space.size());
  const auto db = tp::bench::fullSweep(space);

  const auto factory = [] { return ml::makeClassifier("forest:64"); };

  for (const char* machine : {"mc1", "mc2"}) {
    const auto result =
        runtime::evaluateFigure1(db, machine, space, factory);

    std::printf("--- %s ---\n", machine);
    tp::bench::TablePrinter table(
        {"program", "vs CPU-only", "vs GPU-only", "oracle frac"});
    for (const auto& row : result.rows) {
      table.addRow({row.program, tp::bench::fmt(row.speedupOverCpu),
                    tp::bench::fmt(row.speedupOverGpu),
                    tp::bench::fmt(row.speedupOverOracle)});
    }
    table.print();
    std::printf(
        "geomean speedup over CPU-only: %.2fx   over GPU-only: %.2fx\n",
        result.meanSpeedupOverCpu, result.meanSpeedupOverGpu);
    std::printf("oracle fraction (geomean): %.2f   exact-label accuracy: "
                "%.2f\n",
                result.oracleFraction, result.exactLabelAccuracy);
    std::printf("default-strategy wins: CPU-only %d, GPU-only %d  (paper: "
                "CPU usually wins on mc1, GPU on mc2)\n",
                result.cpuDefaultWins, result.gpuDefaultWins);

    double maxOverCpu = 0.0, maxOverGpu = 0.0;
    std::string argCpu, argGpu;
    for (const auto& row : result.rows) {
      if (row.speedupOverCpu > maxOverCpu) {
        maxOverCpu = row.speedupOverCpu;
        argCpu = row.program;
      }
      if (row.speedupOverGpu > maxOverGpu) {
        maxOverGpu = row.speedupOverGpu;
        argGpu = row.program;
      }
    }
    std::printf("outliers: %.1fx over CPU-only (%s), %.1fx over GPU-only "
                "(%s)\n\n",
                maxOverCpu, argCpu.c_str(), maxOverGpu, argGpu.c_str());
  }
  return 0;
}
