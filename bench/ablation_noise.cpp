// Ablation C — robustness to measurement noise. The paper trains on real
// hardware timings, which are noisy; our simulator is exact. This harness
// re-labels the training set from timings perturbed by multiplicative
// lognormal noise of increasing strength and measures how the deployed
// quality degrades — i.e., how much timing jitter the labeling scheme
// (argmin over 66 measured partitionings) can absorb.

#include <cmath>
#include <cstdio>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "harness_util.hpp"

namespace {

/// Copy of `db` with every measured time multiplied by exp(N(0, sigma)).
tp::runtime::FeatureDatabase withNoise(const tp::runtime::FeatureDatabase& db,
                                       double sigma, std::uint64_t seed) {
  using tp::runtime::FeatureDatabase;
  tp::common::Rng rng(seed);
  FeatureDatabase noisy = FeatureDatabase::withDefaultSchema(
      db.numPartitionings());
  for (const auto& rec : db.records()) {
    auto copy = rec;
    for (double& t : copy.times) {
      t *= std::exp(rng.gaussian(0.0, sigma));
    }
    noisy.add(std::move(copy));
  }
  return noisy;
}

}  // namespace

int main() {
  using namespace tp;
  common::setLogLevel(common::LogLevel::Warn);

  std::printf("=== Noise ablation: training on jittered measurements ===\n\n");

  const runtime::PartitioningSpace space(3, 10);
  const auto clean = tp::bench::fullSweep(space);
  const auto factory = [] { return ml::makeClassifier("forest:64"); };

  tp::bench::TablePrinter table({"noise sigma", "exact acc (mc2)",
                                 "oracle frac (mc2)", "vs CPU-only (mc2)"});

  for (const double sigma : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    const auto noisy = sigma == 0.0 ? clean : withNoise(clean, sigma, 1234);
    // Train with noisy labels...
    ml::Dataset noisyData = noisy.toDataset("mc2",
                                            runtime::FeatureSet::Combined);
    const auto cv = ml::leaveOneGroupOut(noisyData, factory);
    // ...but score predictions against the *true* (clean) timings.
    const auto records = clean.forMachine("mc2");
    const std::size_t cpuIdx = space.cpuOnlyIndex();
    std::vector<double> overCpu, overOracle;
    std::size_t exact = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto& r = *records[i];
      const auto predicted = static_cast<std::size_t>(cv.predictions[i]);
      overCpu.push_back(r.times[cpuIdx] / r.times[predicted]);
      overOracle.push_back(r.bestTime() / r.times[predicted]);
      if (static_cast<int>(predicted) == r.bestLabel()) ++exact;
    }
    table.addRow({tp::bench::fmt(sigma),
                  tp::bench::fmt(static_cast<double>(exact) /
                                 static_cast<double>(records.size())),
                  tp::bench::fmt(common::geomean(overOracle)),
                  tp::bench::fmt(common::geomean(overCpu))});
  }
  table.print();
  std::printf("\nexpectation: labels flip only between near-equivalent "
              "partitionings at moderate noise, so delivered performance "
              "degrades far slower than exact-label accuracy.\n");
  return 0;
}
