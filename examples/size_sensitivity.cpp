// Demonstrates the paper's motivating observation on a single program:
// the best task partitioning shifts with problem size (and differs between
// machines). Sweeps matmul across a fine size ladder and prints, per size,
// the oracle partitioning plus the cost of getting the decision wrong.

#include <cstdio>

#include "common/log.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/strategy.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

int main() {
  common::setLogLevel(common::LogLevel::Warn);

  const runtime::PartitioningSpace space(3, 10);
  const auto& bench = suite::benchmarkByName("matmul");

  std::printf("how the optimal partitioning of %s moves with problem "
              "size\n\n",
              bench.name.c_str());

  for (const auto& machine : sim::evaluationMachines()) {
    std::printf("--- %s ---\n", machine.name.c_str());
    std::printf("%-8s %-12s %-12s %-24s\n", "n", "best", "t_best",
                "penalty of fixed choices");
    for (const std::size_t n : {64ul, 96ul, 128ul, 192ul, 256ul, 320ul,
                                384ul, 448ul, 512ul}) {
      auto inst = bench.make(n);
      std::vector<double> timings;
      const std::size_t best =
          runtime::oracleSearch(inst.task, machine, space, &timings);

      // How much you lose by sticking to each corner strategy.
      const double tBest = timings[best];
      const double lossCpu = timings[space.cpuOnlyIndex()] / tBest;
      const double lossGpu = timings[space.singleDeviceIndex(1)] / tBest;
      // And by freezing the large-size optimum at every size:
      std::printf("%-8zu %-12s %9.3fms   cpu-only %.2fx, gpu-only %.2fx\n",
                  n, space.at(best).toString().c_str(), tBest * 1e3, lossCpu,
                  lossGpu);
    }
    std::printf("\n");
  }
  std::printf("reading guide: small problems stay on the CPU (launch + "
              "transfer overheads dominate); large ones shift toward the "
              "GPUs — and the crossover point differs per machine. A fixed "
              "partitioning is wrong somewhere on the ladder; this is why "
              "the model needs problem-size dependent runtime features.\n");
  return 0;
}
