// tp::serve under concurrent load, end to end:
//
//   1. Train a deployment model per machine on a slice of the suite.
//   2. Stand up one PartitionService holding both machines (mc1 + mc2).
//   3. Replay the suite's kernels at mixed problem sizes from closed-loop
//      client threads (each waits for its response before the next
//      request), against both machines at once.
//   4. Check the serving invariants: every decision equals the unbatched
//      predict path, the warm cache hit-rate clears 50%, and retrain()
//      from the recorded traffic neither deadlocks nor corrupts stats.
//
// Build & run:  ./build/examples/serve_traffic
// Exits non-zero on any violated invariant (ctest smoke test).
//
// Observability flags (both optional; when either is given, a small
// fleet segment runs after the waves so the output covers serve, adapt
// and fleet spans):
//   --trace <path>    enable tp::obs tracing (1-in-4 warm-hit sampling)
//                     and write a Chrome trace-event JSON file on exit
//   --metrics <path>  register service stats on obs::defaultRegistry()
//                     and dump the JSON exposition on exit

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/evaluation.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

constexpr std::size_t kPrograms = 8;  ///< suite slice replayed as traffic
constexpr std::size_t kSizesPerProgram = 2;
constexpr std::size_t kClients = 4;
constexpr std::size_t kRequestsPerClient = 125;

int failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what.c_str());
    ++failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);

  std::string tracePath;
  std::string metricsPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metricsPath = argv[++i];
    } else {
      std::printf("usage: %s [--trace out.json] [--metrics out.json]\n",
                  argv[0]);
      return 2;
    }
  }

  if (!tracePath.empty()) {
    obs::TraceRecorder::Config tc;
    tc.sampleEveryN = 4;  // keep warm-hit spans visible in a short run
    obs::traceRecorder().enable(tc);
  }

  const auto machines = sim::evaluationMachines();
  const runtime::PartitioningSpace space(machines[0].numDevices(), 10);

  // ---- workload + training phase ------------------------------------------
  // One task per (program, size); tasks are machine-independent and only
  // simulated (TimeOnly), so clients can replay shared instances.
  std::vector<runtime::Task> tasks;
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  const auto& all = suite::allBenchmarks();
  for (std::size_t b = 0; b < kPrograms && b < all.size(); ++b) {
    const auto& bench = all[b];
    const std::size_t count =
        std::min(kSizesPerProgram, bench.sizes.size());
    for (std::size_t s = 0; s < count; ++s) {
      const std::size_t n = bench.sizes[s];
      auto inst = bench.make(n);
      for (const auto& machine : machines) {
        db.add(runtime::measureLaunch(inst.task, machine, space,
                                      "n=" + std::to_string(n)));
      }
      tasks.push_back(std::move(inst.task));
    }
  }
  std::printf("workload: %zu launches (%zu programs), %zu machines, "
              "%zu training records\n",
              tasks.size(), kPrograms, machines.size(), db.size());

  // ---- serving phase ------------------------------------------------------
  serve::ServiceConfig config;
  config.cacheCapacity = 256;
  config.lanesPerMachine = 2;
  config.retrainSpec = "forest:32";
  if (!metricsPath.empty()) {
    config.metrics = &obs::defaultRegistry();
  }
  serve::PartitionService service(config);
  for (const auto& machine : machines) {
    service.addMachine(
        machine, std::shared_ptr<const ml::Classifier>(
                     runtime::trainDeploymentModel(db, machine.name,
                                                   "forest:32")));
  }

  // Reference decisions from the unbatched, uncached path.
  std::vector<std::vector<std::size_t>> expected(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (const auto& machine : machines) {
      expected[t].push_back(service.predictLabel(machine.name, tasks[t]));
    }
  }

  std::atomic<std::uint64_t> mismatches{0};
  auto clientWave = [&](std::size_t numClients, std::size_t requestsEach,
                        std::uint64_t seed, bool checkExpected) {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < numClients; ++c) {
      clients.emplace_back([&, c] {
        common::Rng rng(seed + c);
        for (std::size_t r = 0; r < requestsEach; ++r) {
          const std::size_t t = rng.below(tasks.size());
          const std::size_t m = rng.below(machines.size());
          serve::LaunchRequest request;
          request.machine = machines[m].name;
          request.task = tasks[t];
          auto response = service.submit(std::move(request)).get();
          if (checkExpected && response.label != expected[t][m]) {
            mismatches.fetch_add(1);
          }
          if (response.execution.makespan <= 0.0) mismatches.fetch_add(1);
        }
      });
    }
    for (auto& c : clients) c.join();
  };

  clientWave(kClients, kRequestsPerClient, 0xC0FFEE, true);

  const auto warm = service.stats();
  const std::uint64_t firstWave = kClients * kRequestsPerClient;
  std::printf("\nfirst wave: %llu requests, hit-rate %.1f%%, "
              "p50 %.0fus p95 %.0fus, max batch %llu\n",
              static_cast<unsigned long long>(warm.requestsCompleted),
              100.0 * warm.cacheHitRate, warm.latency.p50Seconds * 1e6,
              warm.latency.p95Seconds * 1e6,
              static_cast<unsigned long long>(warm.maxBatch));
  expect(warm.requestsSubmitted == firstWave, "all requests submitted");
  expect(warm.requestsCompleted == firstWave, "all requests completed");
  expect(warm.requestsFailed == 0, "no failed requests");
  expect(mismatches.load() == 0,
         "batched decisions equal the unbatched predict path");
  expect(warm.cacheHitRate > 0.5, "warm cache hit-rate > 50%");
  expect(warm.cache.hits + warm.cache.misses == warm.cache.lookups,
         "cache counters consistent");
  expect(warm.feedbackRecords > 0 &&
             warm.feedbackRecords <= tasks.size() * machines.size(),
         "feedback deduplicates replayed traffic");

  // ---- online feedback loop -----------------------------------------------
  const auto retrained = service.retrain();
  std::printf("retrain: %zu machines from %zu recorded launches → model "
              "version %llu\n",
              retrained.machinesRetrained, retrained.recordsUsed,
              static_cast<unsigned long long>(retrained.modelVersion));
  expect(retrained.machinesRetrained == machines.size(),
         "every machine retrained from recorded traffic");
  expect(retrained.modelVersion > 0, "cache version bumped");

  // Refresh the reference decisions (the model changed), then serve a
  // second wave through the invalidated cache.
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (std::size_t m = 0; m < machines.size(); ++m) {
      expected[t][m] = service.predictLabel(machines[m].name, tasks[t]);
    }
  }
  clientWave(kClients, kRequestsPerClient / 5, 0xBEEF, true);

  const auto fin = service.stats();
  const std::uint64_t total = firstWave + kClients * (kRequestsPerClient / 5);
  std::printf("after retrain: %llu total requests, hit-rate %.1f%%, "
              "model version %llu\n",
              static_cast<unsigned long long>(fin.requestsCompleted),
              100.0 * fin.cacheHitRate,
              static_cast<unsigned long long>(fin.modelVersion));
  expect(fin.requestsCompleted == total, "post-retrain requests completed");
  expect(fin.requestsFailed == 0, "no failures after retrain");
  expect(mismatches.load() == 0, "post-retrain decisions match new model");
  expect(fin.cache.hits + fin.cache.misses == fin.cache.lookups,
         "cache counters consistent after invalidation");
  expect(fin.modelVersion == retrained.modelVersion,
         "stats report the new model version");
  expect(fin.retrains == 1, "one retrain recorded");

  for (const auto& m : fin.machines) {
    std::printf("  %s: %llu requests, device utilization:", m.machine.c_str(),
                static_cast<unsigned long long>(m.requests));
    for (const auto& d : m.devices) {
      std::printf("  %s %.0f%%", d.device.c_str(), 100.0 * d.utilization);
    }
    std::printf("\n");
    expect(m.requests > 0, "both machines saw traffic");
  }

  // ---- observability segment ----------------------------------------------
  // Only with --trace/--metrics: run a small refine-enabled fleet so the
  // emitted trace covers all three layers (serve.*, adapt.*, fleet.*),
  // then dump the requested artifacts. The default ctest smoke run skips
  // this block entirely.
  if (!tracePath.empty() || !metricsPath.empty()) {
    const std::string snapDir =
        (std::filesystem::temp_directory_path() /
         ("tp_serve_traffic_obs_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(snapDir);
    {
      fleet::FleetConfig fc;
      fc.replicas = 2;
      fc.service = config;
      fc.service.refine = true;  // exercises adapt.probe / adapt.win
      fc.snapshotDir = snapDir;
      fleet::Fleet fleet(fc);
      for (const auto& machine : machines) {
        fleet.addMachine(
            machine, std::shared_ptr<const ml::Classifier>(
                         runtime::trainDeploymentModel(db, machine.name,
                                                       "forest:32")));
      }
      common::Rng rng(0xD15C0);
      for (std::size_t r = 0; r < 200; ++r) {
        serve::LaunchRequest request;
        request.machine = machines[rng.below(machines.size())].name;
        request.task = tasks[rng.below(tasks.size())];
        (void)fleet.replica(r % 2).call(std::move(request));
      }
      fleet.gossipRound();
      fleet.saveSnapshots();
      fleet.replica(0).warmStart();  // fleet.snapshot_load span
      fleet.drainAll();
    }
    std::filesystem::remove_all(snapDir);

    if (!tracePath.empty()) {
      obs::traceRecorder().disable();
      obs::traceRecorder().writeChromeTraceFile(tracePath);
      std::printf("\ntrace written to %s\n", tracePath.c_str());
    }
    if (!metricsPath.empty()) {
      std::ofstream out(metricsPath);
      out << obs::defaultRegistry().exportJson() << "\n";
      std::printf("metrics written to %s\n", metricsPath.c_str());
    }
  }

  service.shutdown();
  if (failures == 0) {
    std::printf("\nserve_traffic OK: %llu requests served, %zu retrains, "
                "0 mismatches\n",
                static_cast<unsigned long long>(total),
                static_cast<std::size_t>(fin.retrains));
    return 0;
  }
  std::printf("\nserve_traffic FAILED: %d violated invariant(s)\n", failures);
  return 1;
}
