// tp::serve under concurrent load, end to end:
//
//   1. Train a deployment model per machine on a slice of the suite.
//   2. Stand up one PartitionService holding both machines (mc1 + mc2).
//   3. Replay the suite's kernels at mixed problem sizes from closed-loop
//      client threads (each waits for its response before the next
//      request), against both machines at once.
//   4. Check the serving invariants: every decision equals the unbatched
//      predict path, the warm cache hit-rate clears 50%, and retrain()
//      from the recorded traffic neither deadlocks nor corrupts stats.
//
// Build & run:  ./build/examples/serve_traffic
// Exits non-zero on any violated invariant (ctest smoke test).
//
// Observability flags (both optional; when either is given, a small
// fleet segment runs after the waves so the output covers serve, adapt
// and fleet spans):
//   --trace <path>    enable tp::obs tracing (1-in-4 warm-hit sampling)
//                     and write a Chrome trace-event JSON file on exit
//   --metrics <path>  register service stats on obs::defaultRegistry()
//                     and dump the JSON exposition on exit
//
// Health flags (any of them turns on per-machine SLO tracking plus the
// stock detector rules, evaluated four times after the waves):
//   --health              SLO tracking + health evaluation with a
//                         generous default p99 target (0.5s)
//   --slo-p99-us <us>     explicit p99 target in microseconds. Values
//                         below 1us are a SEEDED BREACH run: the example
//                         then asserts exactly one deduped latency_slo
//                         event (and, with a postmortem dir, exactly one
//                         bundle) — the ctest/CI smoke mode
//   --postmortem-dir <d>  attach an obs::FlightRecorder dumping
//                         postmortem bundles into <d> on breach (implies
//                         tracing, so bundles carry spans); a demand
//                         dump is written when no breach fired, so the
//                         validator always has a bundle to check

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/evaluation.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

constexpr std::size_t kPrograms = 8;  ///< suite slice replayed as traffic
constexpr std::size_t kSizesPerProgram = 2;
constexpr std::size_t kClients = 4;
constexpr std::size_t kRequestsPerClient = 125;

int failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what.c_str());
    ++failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);

  std::string tracePath;
  std::string metricsPath;
  std::string postmortemDir;
  bool healthFlag = false;
  double sloP99Us = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metricsPath = argv[++i];
    } else if (std::strcmp(argv[i], "--health") == 0) {
      healthFlag = true;
    } else if (std::strcmp(argv[i], "--slo-p99-us") == 0 && i + 1 < argc) {
      sloP99Us = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--postmortem-dir") == 0 && i + 1 < argc) {
      postmortemDir = argv[++i];
    } else {
      std::printf(
          "usage: %s [--trace out.json] [--metrics out.json] [--health] "
          "[--slo-p99-us N] [--postmortem-dir dir]\n",
          argv[0]);
      return 2;
    }
  }
  const bool healthMode =
      healthFlag || sloP99Us > 0.0 || !postmortemDir.empty();

  if (!tracePath.empty() || !postmortemDir.empty()) {
    obs::TraceRecorder::Config tc;
    tc.sampleEveryN = 4;  // keep warm-hit spans visible in a short run
    obs::traceRecorder().enable(tc);
  }

  const auto machines = sim::evaluationMachines();
  const runtime::PartitioningSpace space(machines[0].numDevices(), 10);

  // ---- workload + training phase ------------------------------------------
  // One task per (program, size); tasks are machine-independent and only
  // simulated (TimeOnly), so clients can replay shared instances.
  std::vector<runtime::Task> tasks;
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  const auto& all = suite::allBenchmarks();
  for (std::size_t b = 0; b < kPrograms && b < all.size(); ++b) {
    const auto& bench = all[b];
    const std::size_t count =
        std::min(kSizesPerProgram, bench.sizes.size());
    for (std::size_t s = 0; s < count; ++s) {
      const std::size_t n = bench.sizes[s];
      auto inst = bench.make(n);
      for (const auto& machine : machines) {
        db.add(runtime::measureLaunch(inst.task, machine, space,
                                      "n=" + std::to_string(n)));
      }
      tasks.push_back(std::move(inst.task));
    }
  }
  std::printf("workload: %zu launches (%zu programs), %zu machines, "
              "%zu training records\n",
              tasks.size(), kPrograms, machines.size(), db.size());

  // ---- serving phase ------------------------------------------------------
  serve::ServiceConfig config;
  config.cacheCapacity = 256;
  config.lanesPerMachine = 2;
  config.retrainSpec = "forest:32";
  if (!metricsPath.empty() || healthMode) {
    // Health mode needs the registry regardless of --metrics: the SLO
    // gauges and any postmortem bundle's metrics section read from it.
    config.metrics = &obs::defaultRegistry();
  }
  if (healthMode) {
    config.slo.windowSeconds = 30.0;  // the whole run fits in the horizon
    config.slo.subWindows = 6;
    config.slo.minSamples = 50;
    config.slo.targetP99Seconds = sloP99Us > 0.0 ? sloP99Us * 1e-6 : 0.5;
  }
  serve::PartitionService service(config);
  for (const auto& machine : machines) {
    service.addMachine(
        machine, std::shared_ptr<const ml::Classifier>(
                     runtime::trainDeploymentModel(db, machine.name,
                                                   "forest:32")));
  }

  // Reference decisions from the unbatched, uncached path.
  std::vector<std::vector<std::size_t>> expected(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (const auto& machine : machines) {
      expected[t].push_back(service.predictLabel(machine.name, tasks[t]));
    }
  }

  std::atomic<std::uint64_t> mismatches{0};
  auto clientWave = [&](std::size_t numClients, std::size_t requestsEach,
                        std::uint64_t seed, bool checkExpected) {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < numClients; ++c) {
      clients.emplace_back([&, c] {
        common::Rng rng(seed + c);
        for (std::size_t r = 0; r < requestsEach; ++r) {
          const std::size_t t = rng.below(tasks.size());
          const std::size_t m = rng.below(machines.size());
          serve::LaunchRequest request;
          request.machine = machines[m].name;
          request.task = tasks[t];
          auto response = service.submit(std::move(request)).get();
          if (checkExpected && response.label != expected[t][m]) {
            mismatches.fetch_add(1);
          }
          if (response.execution.makespan <= 0.0) mismatches.fetch_add(1);
        }
      });
    }
    for (auto& c : clients) c.join();
  };

  clientWave(kClients, kRequestsPerClient, 0xC0FFEE, true);

  const auto warm = service.stats();
  const std::uint64_t firstWave = kClients * kRequestsPerClient;
  std::printf("\nfirst wave: %llu requests, hit-rate %.1f%%, "
              "p50 %.0fus p95 %.0fus, max batch %llu\n",
              static_cast<unsigned long long>(warm.requestsCompleted),
              100.0 * warm.cacheHitRate, warm.latency.p50Seconds * 1e6,
              warm.latency.p95Seconds * 1e6,
              static_cast<unsigned long long>(warm.maxBatch));
  expect(warm.requestsSubmitted == firstWave, "all requests submitted");
  expect(warm.requestsCompleted == firstWave, "all requests completed");
  expect(warm.requestsFailed == 0, "no failed requests");
  expect(mismatches.load() == 0,
         "batched decisions equal the unbatched predict path");
  expect(warm.cacheHitRate > 0.5, "warm cache hit-rate > 50%");
  expect(warm.cache.hits + warm.cache.misses == warm.cache.lookups,
         "cache counters consistent");
  expect(warm.feedbackRecords > 0 &&
             warm.feedbackRecords <= tasks.size() * machines.size(),
         "feedback deduplicates replayed traffic");

  // ---- online feedback loop -----------------------------------------------
  const auto retrained = service.retrain();
  std::printf("retrain: %zu machines from %zu recorded launches → model "
              "version %llu\n",
              retrained.machinesRetrained, retrained.recordsUsed,
              static_cast<unsigned long long>(retrained.modelVersion));
  expect(retrained.machinesRetrained == machines.size(),
         "every machine retrained from recorded traffic");
  expect(retrained.modelVersion > 0, "cache version bumped");

  // Refresh the reference decisions (the model changed), then serve a
  // second wave through the invalidated cache.
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (std::size_t m = 0; m < machines.size(); ++m) {
      expected[t][m] = service.predictLabel(machines[m].name, tasks[t]);
    }
  }
  clientWave(kClients, kRequestsPerClient / 5, 0xBEEF, true);

  const auto fin = service.stats();
  const std::uint64_t total = firstWave + kClients * (kRequestsPerClient / 5);
  std::printf("after retrain: %llu total requests, hit-rate %.1f%%, "
              "model version %llu\n",
              static_cast<unsigned long long>(fin.requestsCompleted),
              100.0 * fin.cacheHitRate,
              static_cast<unsigned long long>(fin.modelVersion));
  expect(fin.requestsCompleted == total, "post-retrain requests completed");
  expect(fin.requestsFailed == 0, "no failures after retrain");
  expect(mismatches.load() == 0, "post-retrain decisions match new model");
  expect(fin.cache.hits + fin.cache.misses == fin.cache.lookups,
         "cache counters consistent after invalidation");
  expect(fin.modelVersion == retrained.modelVersion,
         "stats report the new model version");
  expect(fin.retrains == 1, "one retrain recorded");

  for (const auto& m : fin.machines) {
    std::printf("  %s: %llu requests, device utilization:", m.machine.c_str(),
                static_cast<unsigned long long>(m.requests));
    for (const auto& d : m.devices) {
      std::printf("  %s %.0f%%", d.device.c_str(), 100.0 * d.utilization);
    }
    std::printf("\n");
    expect(m.requests > 0, "both machines saw traffic");
  }

  // ---- health & postmortem segment ----------------------------------------
  // Four manual evaluation passes against the traffic just served: with
  // triggerAfter=2, a sustained breach emits its event on pass 2 and is
  // suppressed (deduped) on passes 3 and 4 — exactly one event, however
  // long the breach lasts.
  if (healthMode) {
    for (const auto& machine : machines) {
      const obs::SloTracker::Report r = service.sloReport(machine.name);
      std::printf("slo %s: %llu samples, p50 %.0fus p99 %.0fus "
                  "(target %.0fus), burn %.2fx%s\n",
                  machine.name.c_str(),
                  static_cast<unsigned long long>(r.count),
                  r.p50Seconds * 1e6, r.p99Seconds * 1e6,
                  config.slo.targetP99Seconds * 1e6, r.burnRateP99,
                  r.breached ? "  BREACHED" : "");
      expect(r.count > 0, "slo tracker saw the served traffic");
    }

    obs::HealthMonitor monitor;
    service.registerHealthRules(monitor);
    std::unique_ptr<obs::FlightRecorder> recorder;
    // Bundles persist across runs (sequence continuity is a recorder
    // feature), so the exactly-one-bundle check below must count new
    // sequences, not directory contents.
    std::uint64_t seqBefore = 0;
    if (!postmortemDir.empty()) {
      obs::FlightRecorderConfig frc;
      frc.dir = postmortemDir;
      frc.metrics = &obs::defaultRegistry();
      frc.trace = &obs::traceRecorder();
      frc.health = &monitor;
      recorder = std::make_unique<obs::FlightRecorder>(frc);
      seqBefore = recorder->highestSequence();
      recorder->attach();
    }
    std::size_t emitted = 0;
    for (int pass = 0; pass < 4; ++pass) emitted += monitor.evaluateOnce();
    const auto events = monitor.events();
    const obs::HealthCounters hc = monitor.counters();
    std::printf("health: %zu rules, 4 passes, %zu event(s), "
                "%llu suppressed firing(s)\n",
                monitor.ruleCount(), emitted,
                static_cast<unsigned long long>(hc.suppressedFirings));
    for (const auto& event : events) {
      std::printf("  [%s] %s: %s\n", obs::severityName(event.severity),
                  event.rule.c_str(), event.message.c_str());
    }

    if (sloP99Us > 0.0 && sloP99Us < 1.0) {
      // Seeded breach: a sub-microsecond p99 target is unservable, so
      // the latency SLO must breach — and dedup must keep it to ONE
      // event and ONE bundle across all four passes.
      std::size_t breachEvents = 0;
      for (const auto& event : events) {
        if (!event.cleared && event.rule == config.metricsPrefix +
                                                "latency_slo") {
          ++breachEvents;
        }
      }
      expect(breachEvents == 1,
             "seeded SLO breach emits exactly one deduped event");
      expect(hc.suppressedFirings >= 1,
             "sustained breach is suppressed, not re-emitted");
      if (recorder != nullptr) {
        expect(recorder->highestSequence() == seqBefore + 1,
               "one breach event -> exactly one new postmortem bundle");
      }
    }
    if (recorder != nullptr) {
      if (recorder->bundleCount() == 0) {
        recorder->dump("on-demand");  // healthy run: validator still gets one
      }
      std::printf("postmortem bundle(s): %zu in %s (latest %s)\n",
                  recorder->bundleCount(), recorder->dir().c_str(),
                  recorder->pathFor(recorder->highestSequence()).c_str());
    }
    // The rules capture the service; drop them before anything outlives
    // this scope (the monitor is scoped, but be explicit about intent).
    monitor.removeRulesByPrefix("");
  }

  // ---- observability segment ----------------------------------------------
  // Only with --trace/--metrics: run a small refine-enabled fleet so the
  // emitted trace covers all three layers (serve.*, adapt.*, fleet.*),
  // then dump the requested artifacts. The default ctest smoke run skips
  // this block entirely.
  if (!tracePath.empty() || !metricsPath.empty()) {
    const std::string snapDir =
        (std::filesystem::temp_directory_path() /
         ("tp_serve_traffic_obs_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(snapDir);
    {
      fleet::FleetConfig fc;
      fc.replicas = 2;
      fc.service = config;
      fc.service.refine = true;  // exercises adapt.probe / adapt.win
      fc.snapshotDir = snapDir;
      fleet::Fleet fleet(fc);
      for (const auto& machine : machines) {
        fleet.addMachine(
            machine, std::shared_ptr<const ml::Classifier>(
                         runtime::trainDeploymentModel(db, machine.name,
                                                       "forest:32")));
      }
      common::Rng rng(0xD15C0);
      for (std::size_t r = 0; r < 200; ++r) {
        serve::LaunchRequest request;
        request.machine = machines[rng.below(machines.size())].name;
        request.task = tasks[rng.below(tasks.size())];
        (void)fleet.replica(r % 2).call(std::move(request));
      }
      fleet.gossipRound();
      fleet.saveSnapshots();
      fleet.replica(0).warmStart();  // fleet.snapshot_load span
      fleet.drainAll();
    }
    std::filesystem::remove_all(snapDir);

    if (!tracePath.empty()) {
      obs::traceRecorder().disable();
      obs::traceRecorder().writeChromeTraceFile(tracePath);
      std::printf("\ntrace written to %s\n", tracePath.c_str());
    }
    if (!metricsPath.empty()) {
      std::ofstream out(metricsPath);
      out << obs::defaultRegistry().exportJson() << "\n";
      std::printf("metrics written to %s\n", metricsPath.c_str());
    }
  }

  service.shutdown();
  if (failures == 0) {
    std::printf("\nserve_traffic OK: %llu requests served, %zu retrains, "
                "0 mismatches\n",
                static_cast<unsigned long long>(total),
                static_cast<std::size_t>(fin.retrains));
    return 0;
  }
  std::printf("\nserve_traffic FAILED: %d violated invariant(s)\n", failures);
  return 1;
}
