// Kernel inspection tool: runs the compiler pipeline on an OpenCL-C file
// (or a built-in demo kernel) and reports everything the partitioning
// decision is based on — static features as symbolic polynomials, the
// buffer distribution plan, and the predicted cost profile on every device
// of both machines at a chosen problem size.
//
// Usage: inspect_kernel [kernel.cl] [globalSize]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hpp"
#include "features/runtime_features.hpp"
#include "ir/printer.hpp"
#include "runtime/compiler.hpp"
#include "sim/machine.hpp"

using namespace tp;

namespace {

const char* kDemoKernel = R"(
__kernel void blend(__global const float* a, __global const float* b,
                    __global float* out, float t, int n) {
  int i = get_global_id(0);
  if (i < n) {
    float x = a[i];
    float y = b[i];
    out[i] = x + t * (y - x) + sqrt(fabs(x * y));
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  common::setLogLevel(common::LogLevel::Warn);

  std::string source = kDemoKernel;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }
  const std::size_t globalSize =
      argc > 2 ? static_cast<std::size_t>(std::stoull(argv[2])) : (1 << 20);

  runtime::CompiledKernel compiled = [&] {
    try {
      return runtime::CompiledKernel::compile(source);
    } catch (const Error& e) {
      std::fprintf(stderr, "compilation failed: %s\n", e.what());
      std::exit(1);
    }
  }();

  const auto& kernel = compiled.kernel();
  std::printf("kernel: %s (%zu parameters)\n", kernel.name().c_str(),
              kernel.params().size());
  std::printf("\n--- normalized source (round-tripped through the IR) ---\n%s",
              ir::printKernel(kernel).c_str());

  const auto& f = compiled.features();
  std::printf("\n--- static features (per work item, symbolic) ---\n");
  std::printf("  int ops:        %s\n", f.intOps.toString().c_str());
  std::printf("  float ops:      %s\n", f.floatOps.toString().c_str());
  std::printf("  special ops:    %s\n", f.specialOps.toString().c_str());
  std::printf("  global loads:   %s\n", f.globalLoads.toString().c_str());
  std::printf("  global stores:  %s\n", f.globalStores.toString().c_str());
  std::printf("  branches:       %s\n", f.branches.toString().c_str());
  std::printf("  barriers:       %s\n", f.barriers.toString().c_str());
  std::printf("  loops: %d (max depth %d), local memory: %s\n", f.numLoops,
              f.maxLoopDepth, f.usesLocalMemory ? "yes" : "no");

  std::printf("\n--- buffer distribution plan ---\n");
  for (const auto& access : compiled.accesses()) {
    std::printf("  %-10s %-10s%s%s", access.param.c_str(),
                features::accessKindName(access.kind),
                access.isRead ? " read" : "", access.isWritten ? " write" : "");
    if (access.kind == features::AccessKind::Split) {
      std::printf("  (block = %s elements/item)",
                  access.blockSize.toString().c_str());
    }
    std::printf("\n");
  }

  std::printf("\n--- device cost profile at globalSize = %zu ---\n",
              globalSize);
  std::map<std::string, double> bindings;
  for (const auto& p : kernel.params()) {
    if (!p.type.isPointer() && p.type.isIntegral()) {
      bindings[p.name] = static_cast<double>(globalSize);
    }
  }
  bindings[features::kGlobalSizeParam] = static_cast<double>(globalSize);
  const double bytes =
      (f.globalLoads + f.globalStores).eval(bindings) * 4.0 *
      static_cast<double>(globalSize);

  for (const auto& machine : sim::evaluationMachines()) {
    std::printf("  %s:\n", machine.name.c_str());
    for (const auto& d : machine.devices) {
      const double kernelTime = d.kernelTime(
          f, bindings, static_cast<double>(globalSize), 64.0);
      const double transfer = d.transferTime(bytes);
      std::printf("    %-30s kernel %9.3f ms + transfers %8.3f ms\n",
                  d.name.c_str(), kernelTime * 1e3, transfer * 1e3);
    }
  }
  std::printf("\n(integer scalar parameters were bound to globalSize for "
              "this preview; use the TaskBuilder API for exact values)\n");
  return 0;
}
