// The full adaptive serving loop, end to end:
//
//   predict -> explore -> measure -> write-back -> retrain -> decay
//
//   1. Train a deliberately weak deployment model per machine (mostfreq:
//      one static label — the paper's "default strategy" failure mode).
//   2. Serve every distinct launch once: the first response per launch is
//      the pure model prediction, and its makespan is the baseline.
//   3. Replay warm traffic from concurrent clients with online
//      refinement on: the service probes partitioning neighbors on a
//      fraction of traffic and adopts measured wins.
//   4. Check the steady state: for every launch the exploiting response
//      is at most the baseline makespan (wins need strict improvement,
//      and the simulation is deterministic).
//   5. retrain() under live traffic, then re-serve: counters must
//      reconcile (hits + misses == lookups, evictions <= insertions) and
//      the refiner must report version decays back to the new model.
//
// Build & run:  ./build/examples/adaptive_serving
// Exits non-zero on any violated invariant (ctest smoke test).

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "runtime/evaluation.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

constexpr std::size_t kPrograms = 6;
constexpr std::size_t kSizesPerProgram = 2;
constexpr std::size_t kClients = 4;
constexpr std::size_t kWarmRequestsPerClient = 400;

int failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what.c_str());
    ++failures;
  }
}

}  // namespace

int main() {
  common::setLogLevel(common::LogLevel::Warn);

  const auto machines = sim::evaluationMachines();
  const runtime::PartitioningSpace space(machines[0].numDevices(), 10);

  // ---- workload + (weak) training phase -----------------------------------
  std::vector<runtime::Task> tasks;
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  const auto& all = suite::allBenchmarks();
  for (std::size_t b = 0; b < kPrograms && b < all.size(); ++b) {
    const auto& bench = all[b];
    for (std::size_t s = 0;
         s < std::min(kSizesPerProgram, bench.sizes.size()); ++s) {
      auto inst = bench.make(bench.sizes[s]);
      for (const auto& machine : machines) {
        db.add(runtime::measureLaunch(inst.task, machine, space,
                                      "n=" + std::to_string(bench.sizes[s])));
      }
      tasks.push_back(std::move(inst.task));
    }
  }

  serve::ServiceConfig config;
  config.cacheCapacity = 256;
  config.lanesPerMachine = 2;
  config.retrainSpec = "forest:32";
  config.refine = true;
  config.refiner.exploreFraction = 0.3;
  config.refiner.seed = 0xADA9;
  serve::PartitionService service(config);
  for (const auto& machine : machines) {
    // mostfreq = predict the single most frequent best label: plenty of
    // headroom for the refiner to claw back.
    service.addMachine(machine,
                       std::shared_ptr<const ml::Classifier>(
                           runtime::trainDeploymentModel(db, machine.name,
                                                         "mostfreq")));
  }
  std::printf("adaptive serving: %zu launches x %zu machines, explore %.0f%%\n",
              tasks.size(), machines.size(),
              100.0 * config.refiner.exploreFraction);

  // ---- baseline: first sighting serves the pure model prediction ----------
  std::vector<std::vector<double>> baseline(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (const auto& machine : machines) {
      serve::LaunchRequest request;
      request.machine = machine.name;
      request.task = tasks[t];
      const auto response = service.call(std::move(request));
      expect(!response.explored && !response.refined,
             "first sighting serves the unrefined model prediction");
      expect(response.label ==
                 service.predictLabel(machine.name, tasks[t]),
             "baseline label equals the unbatched predict path");
      baseline[t].push_back(response.execution.makespan);
    }
  }

  // ---- warm traffic: explore, measure, write back -------------------------
  auto clientWave = [&](std::size_t requestsEach, std::uint64_t seed) {
    std::vector<std::thread> clients;
    std::atomic<std::uint64_t> faults{0};
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        common::Rng rng(seed + c);
        for (std::size_t r = 0; r < requestsEach; ++r) {
          serve::LaunchRequest request;
          const std::size_t t = rng.below(tasks.size());
          request.machine = machines[rng.below(machines.size())].name;
          request.task = tasks[t];
          const auto response = service.submit(std::move(request)).get();
          if (response.execution.makespan <= 0.0) faults.fetch_add(1);
        }
      });
    }
    for (auto& c : clients) c.join();
    expect(faults.load() == 0, "all responses carry a positive makespan");
  };
  clientWave(kWarmRequestsPerClient, 0xF00D);

  // ---- steady state: refined cost never exceeds the baseline --------------
  std::size_t refinedLaunches = 0;
  double baselineSum = 0.0, steadySum = 0.0;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (std::size_t m = 0; m < machines.size(); ++m) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        serve::LaunchRequest request;
        request.machine = machines[m].name;
        request.task = tasks[t];
        const auto response = service.call(std::move(request));
        if (response.explored) continue;  // probe: skip, try again
        expect(response.execution.makespan <=
                   baseline[t][m] * (1.0 + 1e-9),
               "steady-state refined time <= pure-prediction baseline");
        baselineSum += baseline[t][m];
        steadySum += response.execution.makespan;
        if (response.refined) ++refinedLaunches;
        break;
      }
    }
  }
  const auto warm = service.stats();
  std::printf("steady state: %.1fus -> %.1fus mean makespan (%.1f%% "
              "faster), %zu/%zu launches refined, %llu wins\n",
              1e6 * baselineSum / static_cast<double>(tasks.size() *
                                                      machines.size()),
              1e6 * steadySum / static_cast<double>(tasks.size() *
                                                    machines.size()),
              100.0 * (baselineSum - steadySum) / baselineSum,
              refinedLaunches, tasks.size() * machines.size(),
              static_cast<unsigned long long>(warm.refiner.wins));
  expect(steadySum <= baselineSum * (1.0 + 1e-9),
         "aggregate steady-state time <= baseline");
  expect(warm.refiner.decisions ==
             warm.refiner.explorations + warm.refiner.exploitations +
                 warm.refiner.untracked,
         "refiner decision counters reconcile");
  expect(warm.refinedKeys == tasks.size() * machines.size(),
         "every distinct launch is tracked by the refiner");
  expect(warm.cache.hits + warm.cache.misses == warm.cache.lookups,
         "cache counters reconcile before retrain");

  // ---- retrain under load: decay back to the (better) model ---------------
  std::atomic<bool> stop{false};
  std::vector<std::thread> background;
  for (std::size_t c = 0; c < 2; ++c) {
    background.emplace_back([&, c] {
      common::Rng rng(0xCAFE + c);
      while (!stop.load()) {
        serve::LaunchRequest request;
        request.machine = machines[rng.below(machines.size())].name;
        request.task = tasks[rng.below(tasks.size())];
        (void)service.submit(std::move(request)).get();
      }
    });
  }
  const auto retrained = service.retrain();
  stop.store(true);
  for (auto& c : background) c.join();
  service.drain();
  expect(retrained.machinesRetrained == machines.size(),
         "every machine retrained from recorded traffic");

  // Serve every launch once under the new model so the refiner sees the
  // version bump and decays.
  clientWave(kWarmRequestsPerClient / 4, 0xD1CE);
  const auto fin = service.stats();
  std::printf("after retrain: model version %llu, %llu refiner resets, "
              "%llu requests, hit-rate %.1f%%\n",
              static_cast<unsigned long long>(fin.modelVersion),
              static_cast<unsigned long long>(fin.refiner.resets),
              static_cast<unsigned long long>(fin.requestsCompleted),
              100.0 * fin.cacheHitRate);
  expect(fin.modelVersion == retrained.modelVersion,
         "stats report the bumped model version");
  expect(fin.refiner.resets >= 1, "refiner decayed after the retrain");
  expect(fin.cache.hits + fin.cache.misses == fin.cache.lookups,
         "cache counters reconcile after retrain under load");
  expect(fin.cache.evictions <= fin.cache.insertions,
         "evictions never exceed insertions");
  expect(fin.requestsFailed == 0, "no failed requests");
  expect(fin.requestsCompleted == fin.requestsSubmitted,
         "every submitted request was answered");
  for (const auto& m : fin.machines) {
    expect(m.modelVersion == retrained.modelVersion,
           "machine " + m.machine + " serves the retrained generation");
  }

  service.shutdown();
  if (failures == 0) {
    std::printf("\nadaptive_serving OK: %llu requests, %llu wins, "
                "%llu probes, %llu resets\n",
                static_cast<unsigned long long>(fin.requestsCompleted),
                static_cast<unsigned long long>(fin.refiner.wins),
                static_cast<unsigned long long>(fin.refiner.explorations),
                static_cast<unsigned long long>(fin.refiner.resets));
    return 0;
  }
  std::printf("\nadaptive_serving FAILED: %d violated invariant(s)\n",
              failures);
  return 1;
}
