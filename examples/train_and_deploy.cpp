// The paper's two phases as a command-line workflow:
//
//   training phase:    full sweep over the suite → feature database (CSV)
//                      → offline model per machine (text files on disk)
//   deployment phase:  reload the model and predict partitionings for a
//                      program that was held out of training.
//
// Artifacts land in the current directory: taskpart_db.csv,
// taskpart_model_mc1.txt, taskpart_model_mc2.txt.

#include <cstdio>

#include "common/log.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/strategy.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

int main() {
  common::setLogLevel(common::LogLevel::Info);

  const runtime::PartitioningSpace space(3, 10);
  const std::string holdout = "blackscholes";

  // ---- training phase ------------------------------------------------------
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  for (const auto& bench : suite::allBenchmarks()) {
    if (bench.name == holdout) continue;  // "new program" for deployment
    for (const std::size_t n : bench.sizes) {
      auto inst = bench.make(n);
      for (const auto& machine : sim::evaluationMachines()) {
        db.add(runtime::measureLaunch(inst.task, machine, space,
                                      "n=" + std::to_string(n)));
      }
    }
  }
  db.saveCsv("taskpart_db.csv");
  std::printf("training phase: %zu launches recorded → taskpart_db.csv\n",
              db.size());

  for (const auto& machine : sim::evaluationMachines()) {
    const auto model =
        runtime::trainDeploymentModel(db, machine.name, "forest:64");
    const std::string path = "taskpart_model_" + machine.name + ".txt";
    model->saveFile(path);
    std::printf("trained model for %s → %s\n", machine.name.c_str(),
                path.c_str());
  }

  // ---- deployment phase -----------------------------------------------------
  std::printf("\ndeployment phase: predicting for held-out program '%s'\n",
              holdout.c_str());
  const auto& bench = suite::benchmarkByName(holdout);

  for (const auto& machine : sim::evaluationMachines()) {
    std::shared_ptr<const ml::Classifier> model = ml::loadClassifierFile(
        "taskpart_model_" + machine.name + ".txt");
    runtime::PredictedStrategy strategy(model);
    vcl::Context ctx(machine, vcl::ExecMode::TimeOnly, nullptr);
    runtime::Scheduler scheduler(ctx);

    std::printf("--- %s ---\n", machine.name.c_str());
    std::printf("%-12s %-12s %-10s %-10s %-10s %s\n", "size", "partition",
                "t_pred", "t_cpu", "t_gpu", "speedups");
    for (const std::size_t n : bench.sizes) {
      auto inst = bench.make(n);
      const std::size_t choice = strategy.choose(inst.task, ctx, space);
      const double tPred =
          scheduler.execute(inst.task, space.at(choice)).makespan;
      const double tCpu =
          scheduler.execute(inst.task, space.at(space.cpuOnlyIndex()))
              .makespan;
      const double tGpu =
          scheduler
              .execute(inst.task, space.at(space.singleDeviceIndex(1)))
              .makespan;
      std::printf("%-12zu %-12s %8.3fms %8.3fms %8.3fms  %.2fx / %.2fx\n", n,
                  space.at(choice).toString().c_str(), tPred * 1e3,
                  tCpu * 1e3, tGpu * 1e3, tCpu / tPred, tGpu / tPred);
    }
  }
  return 0;
}
