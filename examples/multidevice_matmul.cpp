// Multi-device execution under the hood: runs one SGEMM across every
// single-device and several mixed partitionings in Compute mode, verifies
// that all of them produce identical (correct) results, and shows the
// per-device timeline the scheduler built — transfers, kernel chunk, and
// the concurrent makespan.

#include <cstdio>

#include "common/log.hpp"
#include "runtime/scheduler.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

int main() {
  common::setLogLevel(common::LogLevel::Warn);

  const auto& bench = suite::benchmarkByName("matmul");
  const std::size_t n = 256;
  const auto machine = sim::makeMc2();

  std::printf("matmul %zux%zu on %s (%zu devices)\n\n", n, n,
              machine.name.c_str(), machine.numDevices());

  const std::vector<std::vector<int>> partitionings = {
      {10, 0, 0}, {0, 10, 0}, {0, 5, 5}, {2, 4, 4}, {4, 3, 3}, {6, 2, 2},
  };

  for (const auto& units : partitionings) {
    // Fresh instance per run: instances are single-use.
    auto inst = bench.make(n);
    vcl::Context ctx(machine, vcl::ExecMode::Compute);
    runtime::Scheduler scheduler(ctx);
    const runtime::Partitioning p{units, 10};
    const auto result = scheduler.execute(inst.task, p);

    std::string error;
    const bool ok = inst.verify(&error);

    std::printf("partitioning %-10s makespan %8.3f ms   %s\n",
                p.toString().c_str(), result.makespan * 1e3,
                ok ? "results OK" : ("WRONG: " + error).c_str());
    for (const auto& d : result.devices) {
      const auto& dev = machine.devices[d.device];
      std::printf("    %-28s groups [%5zu, %5zu)  in %6.3f ms  kernel "
                  "%7.3f ms  out %6.3f ms\n",
                  dev.name.c_str(), d.groupBegin, d.groupEnd,
                  d.transferInSeconds * 1e3, d.kernelSeconds * 1e3,
                  d.transferOutSeconds * 1e3);
    }
    if (!ok) return 1;
  }

  std::printf("\nall partitionings computed identical, verified results — "
              "the access classification (A, B replicated; C split) makes "
              "any split safe.\n");
  return 0;
}
