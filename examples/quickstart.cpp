// Quickstart: the full pipeline on a user-written kernel, end to end.
//
//   1. Compile an OpenCL-C kernel → static features + buffer access plan.
//   2. Train a partitioning model offline (small sweep over suite programs).
//   3. Launch the kernel: the runtime evaluates the problem-size dependent
//      features, asks the model for a partitioning, and executes it across
//      CPU + 2 GPUs — with verified results.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "common/log.hpp"
#include "runtime/compiler.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/strategy.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

int main() {
  common::setLogLevel(common::LogLevel::Warn);

  // ---- 1. "compile" a user kernel ----------------------------------------
  const char* source = R"(
__kernel void axpb(__global const float* x, __global float* y,
                   float a, float b, int n) {
  int i = get_global_id(0);
  if (i < n) {
    y[i] = a * x[i] + b;
  }
}
)";
  const auto compiled = runtime::CompiledKernel::compile(source);
  std::printf("compiled kernel '%s'\n", compiled.kernel().name().c_str());
  for (const auto& access : compiled.accesses()) {
    std::printf("  buffer %-4s → %s\n", access.param.c_str(),
                features::accessKindName(access.kind));
  }

  // ---- 2. offline training phase ------------------------------------------
  const runtime::PartitioningSpace space(3, 10);
  const auto machine = sim::makeMc2();
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  for (const auto& bench : suite::allBenchmarks()) {
    for (const std::size_t n : bench.sizes) {
      auto inst = bench.make(n);
      db.add(runtime::measureLaunch(inst.task, machine, space,
                                    "n=" + std::to_string(n)));
    }
  }
  std::shared_ptr<const ml::Classifier> model =
      runtime::trainDeploymentModel(db, machine.name, "forest:64");
  std::printf("\ntrained forest on %zu launches of the 23-program suite\n",
              db.size());

  // ---- 3. deployment: launch with the predicted partitioning --------------
  const std::size_t n = 1 << 20;
  auto x = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  auto y = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  for (std::size_t i = 0; i < n; ++i) {
    x->data<float>()[i] = static_cast<float>(i % 100) * 0.01f;
  }

  runtime::Task task =
      runtime::TaskBuilder(compiled, "axpb")
          .global(n)
          .local(64)
          .arg(x)
          .arg(y)
          .arg(2.0f)
          .arg(1.0f)
          .arg(static_cast<int>(n))
          .native([](const vcl::WorkGroupCtx& wg, const vcl::LaunchArgs& a) {
            auto x = a.view<float>(0);
            auto y = a.view<float>(1);
            const float alpha = a.scalarFloat(2);
            const float beta = a.scalarFloat(3);
            for (std::size_t l = 0; l < wg.localSize; ++l) {
              const std::size_t i = wg.globalId(l);
              y[i] = alpha * x[i] + beta;
            }
          })
          .build();

  vcl::Context ctx(machine, vcl::ExecMode::Compute);
  runtime::Scheduler scheduler(ctx);
  runtime::PredictedStrategy predicted(model);

  const std::size_t choice = predicted.choose(task, ctx, space);
  const auto result = scheduler.execute(task, space.at(choice));

  std::printf("\npredicted partitioning (CPU/GPU0/GPU1): %s\n",
              space.at(choice).toString().c_str());
  std::printf("simulated makespan: %.3f ms across %zu device(s)\n",
              result.makespan * 1e3, result.devices.size());

  // Compare against the paper's two default strategies.
  vcl::Context probe(machine, vcl::ExecMode::TimeOnly, nullptr);
  runtime::Scheduler probeScheduler(probe);
  const double tCpu =
      probeScheduler.execute(task, space.at(space.cpuOnlyIndex())).makespan;
  const double tGpu =
      probeScheduler.execute(task, space.at(space.singleDeviceIndex(1)))
          .makespan;
  std::printf("CPU-only: %.3f ms (%.2fx)   GPU-only: %.3f ms (%.2fx)\n",
              tCpu * 1e3, tCpu / result.makespan, tGpu * 1e3,
              tGpu / result.makespan);
  std::vector<double> timings;
  const std::size_t best =
      runtime::oracleSearch(task, machine, space, &timings);
  std::printf("oracle: %s at %.3f ms — prediction achieves %.0f%% of "
              "oracle performance\n",
              space.at(best).toString().c_str(), timings[best] * 1e3,
              100.0 * timings[best] / result.makespan);

  // Verify the multi-device execution computed the right thing.
  for (std::size_t i = 0; i < n; ++i) {
    const float expected = 2.0f * x->data<float>()[i] + 1.0f;
    if (y->data<float>()[i] != expected) {
      std::printf("VERIFICATION FAILED at %zu\n", i);
      return 1;
    }
  }
  std::printf("results verified: y == 2*x + 1 for all %zu elements\n", n);
  return 0;
}
