// Replicated serving with gossiped refiner wins and snapshot
// persistence, end to end:
//
//   1. Train the paper's failure-mode deployment model (CPU-only default
//      strategy) for both evaluation machines — maximal headroom for
//      online refinement.
//   2. Skewed traffic: ONLY replica A of a 3-replica fleet serves the
//      workload and hill-climbs to measured wins.
//   3. One gossip round: replicas B and C adopt A's wins — same
//      incumbent labels and means — and serve them refined on first
//      sight without issuing a single probe of their own.
//   4. Probe economics: the same uniform traffic through a gossip-on
//      and a gossip-off fleet; with gossip every replica issues strictly
//      fewer probes (wins are shared, not rediscovered), and the fleet's
//      steady-state refined makespan is no worse than a single-replica
//      refined baseline given the same total traffic.
//   5. Kill + restart: snapshots are saved, the fleet is destroyed, a
//      fresh fleet warm-starts from the snapshots and serves refined
//      decisions immediately — zero probes, identical labels.
//
// Build & run:  ./build/examples/fleet_serving
// Exits non-zero on any violated invariant (ctest smoke test).

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

using namespace tp;

namespace {

constexpr std::size_t kPrograms = 6;
constexpr std::size_t kSizesPerProgram = 2;
constexpr std::size_t kSkewedRequests = 900;
// Uniform-traffic phase: many small waves with a gossip round between
// each, so measured evidence spreads before peers re-probe it (one round
// per ~1 sighting of each key per replica).
constexpr std::size_t kWaves = 16;
constexpr std::size_t kRequestsPerWave = 90;

int failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what.c_str());
    ++failures;
  }
}

struct Workload {
  std::vector<sim::MachineConfig> machines = sim::evaluationMachines();
  std::vector<runtime::Task> tasks;
  std::shared_ptr<const ml::Classifier> weakModel;

  Workload() {
    const auto& all = suite::allBenchmarks();
    for (std::size_t b = 0; b < kPrograms && b < all.size(); ++b) {
      const auto& bench = all[b];
      for (std::size_t s = 0;
           s < std::min(kSizesPerProgram, bench.sizes.size()); ++s) {
        tasks.push_back(bench.make(bench.sizes[s]).task);
      }
    }
    // The CPU-only default strategy as a deployed model: every machine
    // shares one "mostfreq" classifier pinned to the CPU-only label.
    const runtime::PartitioningSpace space(machines[0].numDevices(), 10);
    ml::Dataset seed;
    seed.numClasses = static_cast<int>(space.size());
    seed.featureNames = {"f0"};
    seed.add({0.0}, static_cast<int>(space.cpuOnlyIndex()), "seed");
    auto model = ml::makeClassifier("mostfreq");
    model->train(seed);
    weakModel = std::shared_ptr<const ml::Classifier>(std::move(model));
  }

  fleet::FleetConfig config(std::size_t replicas, bool gossip) const {
    fleet::FleetConfig fc;
    fc.replicas = replicas;
    fc.gossipEnabled = gossip;
    fc.service.refine = true;
    fc.service.lanesPerMachine = 2;
    fc.service.refiner.exploreFraction = 0.4;
    // Deterministic simulation: one sample per arm is ground truth, so
    // probing converges and gossiped evidence is never re-probed.
    fc.service.refiner.probeSamples = 1;
    // Radius 2 gives the hill-climb enough reach to escape the shallow
    // plateau around the CPU-only default on transfer-bound kernels.
    fc.service.refiner.neighborRadius = 2;
    // The probe trajectory (and hence which local optimum each replica
    // settles in) depends on the seed through the per-shard Rng streams;
    // keys shard by their serving fingerprint, so re-tune this if the
    // fingerprint scheme changes.
    fc.service.refiner.seed = 0xBEEF;
    return fc;
  }

  serve::LaunchRequest request(std::size_t index) const {
    serve::LaunchRequest r;
    r.machine = machines[index % machines.size()].name;
    r.task = tasks[(index / machines.size()) % tasks.size()];
    return r;
  }

  std::size_t distinctLaunches() const {
    return tasks.size() * machines.size();
  }
};

/// Uniform random traffic through a fleet, gossiping between waves when
/// enabled. Launches are drawn randomly (not striding round-robin, which
/// would alias with the fleet's round-robin balancer and hand each
/// replica a disjoint key subset) and served one at a time: this example
/// asserts exact invariants, and sequential traffic keeps the search
/// path — epsilon draws, probe targets, merge order — reproducible
/// run-to-run (the TSan-covered test_fleet suite hammers the concurrent
/// paths instead). Returns the max probes (explorations) on any replica.
std::uint64_t driveWaves(fleet::Fleet& fleet, const Workload& wl,
                         bool gossip, std::size_t requestsPerWave) {
  common::Rng rng(0x7AFF1C);
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    for (std::size_t i = 0; i < requestsPerWave; ++i) {
      const auto response =
          fleet.call(wl.request(rng.below(wl.distinctLaunches())));
      expect(response.execution.makespan > 0.0, "positive makespan");
    }
    if (gossip) fleet.gossipRound();
  }
  fleet.drainAll();
  std::uint64_t maxProbes = 0;
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    maxProbes = std::max(maxProbes,
                         fleet.replica(r).stats().refiner.explorations);
  }
  return maxProbes;
}

/// Steady-state mean makespan: one non-explored response per distinct
/// launch, served by `replica`.
double steadyStateMean(fleet::Replica& replica, const Workload& wl) {
  double sum = 0.0;
  for (std::size_t i = 0; i < wl.distinctLaunches(); ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto response = replica.call(wl.request(i));
      if (response.explored) continue;
      sum += response.execution.makespan;
      break;
    }
  }
  return sum / static_cast<double>(wl.distinctLaunches());
}

}  // namespace

int main() {
  common::setLogLevel(common::LogLevel::Warn);
  const Workload wl;
  const std::string snapDir =
      (std::filesystem::temp_directory_path() /
       ("tp_fleet_example_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(snapDir);
  std::printf("fleet serving: %zu launches x %zu machines, 3 replicas\n",
              wl.tasks.size(), wl.machines.size());

  // ---- skewed traffic: replica A discovers, B and C adopt -----------------
  {
    auto fc = wl.config(3, /*gossip=*/true);
    fc.snapshotDir = snapDir;
    fleet::Fleet fleet(fc);
    for (const auto& machine : wl.machines) {
      fleet.addMachine(machine, wl.weakModel);
    }
    for (std::size_t i = 0; i < kSkewedRequests; ++i) {
      (void)fleet.replica(0).call(wl.request(i));
    }
    const auto wins = fleet.replica(0).service().exportRefinedWins();
    expect(!wins.empty(), "skewed traffic produced refinement wins on A");
    std::printf("replica A refined %zu launch signatures\n", wins.size());

    fleet.gossipRound();

    for (const std::size_t peer : {1u, 2u}) {
      auto& replica = fleet.replica(peer);
      const auto stats = replica.stats();
      expect(stats.fleet.winsAdopted == wins.size(),
             "replica " + replica.id() + " adopted every gossiped win");
      expect(stats.fleet.winsReceived ==
                 stats.fleet.winsMerged + stats.fleet.winsRejectedStale +
                     stats.fleet.winsDropped,
             "gossip counters reconcile on " + replica.id());
      const auto version = replica.service().modelVersion();
      for (const auto& win : wins) {
        const auto inc =
            replica.service().refiner()->incumbent(win.key, version);
        expect(inc.tracked && inc.label == win.incumbentLabel,
               "adopted incumbent label matches A's");
        expect(inc.tracked && inc.meanSeconds == win.incumbentMean,
               "adopted incumbent mean matches A's");
      }
      // First sight of every launch: B/C serve refined decisions without
      // ever probing — the wins were measured once, on A.
      std::size_t refined = 0;
      for (std::size_t i = 0; i < wl.distinctLaunches(); ++i) {
        const auto response = replica.call(wl.request(i));
        expect(!response.explored, "peers never probe gossiped wins");
        if (response.refined) ++refined;
      }
      expect(replica.stats().refiner.explorations == 0,
             "replica " + replica.id() + " issued zero probes");
      expect(refined >= wins.size(),
             "peers serve adopted wins as refined decisions");
    }

    // ---- kill + restart: snapshots carry the refined state ----------------
    const auto sequences = fleet.saveSnapshots();
    expect(sequences.size() == 3, "every replica wrote a snapshot");
  }  // fleet destroyed: the "kill"

  {
    auto fc = wl.config(3, /*gossip=*/true);
    fc.snapshotDir = snapDir;
    fleet::Fleet fleet(fc);
    for (const auto& machine : wl.machines) {
      fleet.addMachine(machine, wl.weakModel);
    }
    std::size_t refined = 0;
    for (std::size_t r = 0; r < fleet.size(); ++r) {
      auto& replica = fleet.replica(r);
      expect(replica.warmStart(), "replica warm-starts from its snapshot");
      expect(replica.stats().fleet.snapshotsLoaded == 1,
             "snapshot load is counted");
      for (std::size_t i = 0; i < wl.distinctLaunches(); ++i) {
        const auto response = replica.call(wl.request(i));
        expect(!response.explored,
               "restarted replicas serve without probing");
        if (response.refined) ++refined;
      }
      expect(replica.stats().refiner.explorations == 0,
             "restarted " + replica.id() + " issued zero probes");
    }
    expect(refined > 0, "restarted fleet serves refined decisions");
    std::printf("restart: %zu refined decisions served from snapshots, "
                "0 probes\n", refined);
  }
  std::filesystem::remove_all(snapDir);

  // ---- probe economics: gossip-on vs gossip-off vs single replica ---------
  // The single-replica baseline serves the same PER-REPLICA traffic
  // (one third of the fleet's): the claim under test is that gossip
  // makes each fleet replica at least as refined as a lone service
  // seeing the same load, while probing strictly less than isolated
  // replicas would.
  std::uint64_t probesOn = 0, probesOff = 0;
  double steadyFleet = 0.0, steadySingle = 0.0;
  {
    fleet::Fleet fleet(wl.config(3, /*gossip=*/true));
    for (const auto& machine : wl.machines) {
      fleet.addMachine(machine, wl.weakModel);
    }
    probesOn = driveWaves(fleet, wl, /*gossip=*/true, kRequestsPerWave);
    steadyFleet = steadyStateMean(fleet.replica(0), wl);
  }
  {
    fleet::Fleet fleet(wl.config(3, /*gossip=*/false));
    for (const auto& machine : wl.machines) {
      fleet.addMachine(machine, wl.weakModel);
    }
    probesOff = driveWaves(fleet, wl, /*gossip=*/false, kRequestsPerWave);
  }
  {
    fleet::Fleet fleet(wl.config(1, /*gossip=*/false));
    for (const auto& machine : wl.machines) {
      fleet.addMachine(machine, wl.weakModel);
    }
    (void)driveWaves(fleet, wl, /*gossip=*/false, kRequestsPerWave / 3);
    steadySingle = steadyStateMean(fleet.replica(0), wl);
  }
  std::printf("probes per replica (max): %llu with gossip, %llu without; "
              "steady-state makespan %.1fus fleet vs %.1fus single\n",
              static_cast<unsigned long long>(probesOn),
              static_cast<unsigned long long>(probesOff),
              1e6 * steadyFleet, 1e6 * steadySingle);
  expect(probesOn < probesOff,
         "gossip strictly reduces probes per replica (wins are shared, "
         "not rediscovered)");
  expect(steadyFleet <= steadySingle * (1.0 + 1e-9),
         "fleet steady-state refined makespan <= single-replica baseline "
         "at equal per-replica traffic");

  if (failures == 0) {
    std::printf("\nfleet_serving OK\n");
    return 0;
  }
  std::printf("\nfleet_serving FAILED: %d violated invariant(s)\n", failures);
  return 1;
}
